//! Morsel-driven pipelines: fused scan→filter→join-probe execution.
//!
//! The operator-at-a-time path materializes every intermediate: a bound
//! constant becomes a `select_eq` that *copies* the surviving rows into a
//! fresh table, which the next operator reads back just to throw most of it
//! away again. This module is the fused alternative, the shared-memory
//! analogue of Spark's whole-stage codegen collapsing `Filter → Project →
//! HashJoin` into one generated loop:
//!
//! * the probe side is cut into [`JoinConfig::morsel_rows`]-sized
//!   **morsels**, each a task on the persistent worker pool
//!   ([`crate::pool`]);
//! * inside one morsel, every equality predicate is evaluated by the
//!   vectorized kernels ([`crate::ops::kernels`]) into one **filter
//!   bitmap**, which is pushed directly into the join probe — rows that
//!   fail the filter never touch the hash index, and the filtered
//!   intermediate table is **never built**;
//! * non-key columns are **late-materialized**: only after all morsels
//!   report their match pairs does the sink ([`exec::write_pairs`]) gather
//!   payload columns, once, into disjoint slices of the pre-sized output.
//!
//! `columnar.pipeline.bytes_elided` counts the bytes of intermediate table
//! the fused path did *not* copy (the materializing plan's `select_eq`
//! output) — the observable win next to `concat.bytes_copied == 0`.

use crate::bitmap::Bitmap;
use crate::exec::{self, JoinConfig};
use crate::metric_counter;
use crate::ops::{self, kernels};
use crate::pool;
use crate::table::Table;

/// Minimum table size for which cutting morsels (and paying task overhead)
/// is worthwhile; below it the serial operators run directly.
pub const MIN_PARALLEL_ROWS: usize = 4096;

/// One equality predicate of a fused pipeline: `column == value` over
/// dictionary ids (a bound term of a triple pattern, or any pushed-down
/// selection).
#[derive(Debug, Clone, Copy)]
pub struct EqFilter {
    /// Probe-side column index.
    pub col: usize,
    /// Dictionary id the column must equal.
    pub value: u32,
}

/// Splits `0..n` into `morsel_rows`-sized ranges (at least one when
/// `n > 0`).
pub fn morsel_ranges(n: usize, morsel_rows: usize) -> Vec<std::ops::Range<usize>> {
    let step = morsel_rows.max(1);
    (0..n.div_ceil(step))
        .map(|m| m * step..((m + 1) * step).min(n))
        .collect()
}

/// Evaluates `filters` over one morsel (`range`) of `probe` as a bitmap,
/// entirely through the chunked kernels.
fn morsel_filter_bitmap(
    probe: &Table,
    filters: &[EqFilter],
    range: &std::ops::Range<usize>,
) -> Bitmap {
    let mut iter = filters.iter();
    let mut bm = match iter.next() {
        Some(f) => kernels::eq_const(&probe.column(f.col)[range.clone()], f.value),
        None => Bitmap::full(range.len()),
    };
    for f in iter {
        kernels::and_eq_const(&mut bm, &probe.column(f.col)[range.clone()], f.value);
    }
    bm
}

/// Fused scan→filter→join-probe pipeline: produces the same bag of rows as
///
/// ```text
/// natural_join(select_eq(probe, f₁) ∘ … ∘ select_eq(probe, fₙ), build)
/// ```
///
/// (with `probe` as the left operand) but never materializes the filtered
/// probe table: each morsel folds its filters into a bitmap, probes the
/// surviving rows against one shared build index, and only the final sink
/// gathers payload columns. Row order is morsel-major — a permutation of
/// the serial plan's bag, like every parallel join here.
///
/// Falls back to the materializing plan when the inputs share no column or
/// the probe side is trivially small.
pub fn fused_filter_join(
    probe: &Table,
    filters: &[EqFilter],
    build: &Table,
    cfg: &JoinConfig,
) -> Table {
    let common = probe.schema().common_columns(build.schema());
    if common.is_empty() || probe.num_rows() < MIN_PARALLEL_ROWS || build.is_empty() {
        let mut filtered = None;
        for f in filters {
            let src = filtered.as_ref().unwrap_or(probe);
            filtered = Some(ops::select_eq(src, f.col, f.value));
        }
        return ops::natural_join(filtered.as_ref().unwrap_or(probe), build);
    }
    let probe_keys: Vec<usize> = common
        .iter()
        .map(|c| probe.schema().index_of(c).unwrap())
        .collect();
    let build_keys: Vec<usize> = common
        .iter()
        .map(|c| build.schema().index_of(c).unwrap())
        .collect();
    let (schema, build_payload) = ops::join_schema(probe, build, &build_keys);
    let index = exec::build_bcast_index(build, &build_keys);

    let ranges = morsel_ranges(probe.num_rows(), cfg.morsel_rows);
    metric_counter!("columnar.pipeline.fused_calls").inc();
    metric_counter!("columnar.pipeline.morsels").add(ranges.len() as u64);
    let tasks: Vec<_> = ranges
        .iter()
        .map(|range| {
            let (index, probe_keys) = (&index, &probe_keys);
            move |_worker: usize| {
                let bm = morsel_filter_bitmap(probe, filters, range);
                let kept = bm.count_ones();
                let pairs = exec::probe_bcast(
                    index,
                    probe,
                    probe_keys,
                    bm.iter_ones().map(|i| range.start + i),
                    // `probe` is the left operand and the index was built
                    // on the right.
                    false,
                );
                (pairs, kept)
            }
        })
        .collect();
    let results = pool::current().run(tasks);

    // The materializing plan would have copied every filter-surviving probe
    // row (all columns) into an intermediate table; the fused plan did not.
    let survivors: usize = results.iter().map(|(_, kept)| kept).sum();
    let elided = (survivors * probe.schema().len() * std::mem::size_of::<u32>()) as u64;
    metric_counter!("columnar.pipeline.bytes_elided").add(elided);

    let pair_lists: Vec<Vec<(u32, u32)>> = results.into_iter().map(|(pairs, _)| pairs).collect();
    exec::write_pairs(
        schema,
        probe,
        build,
        &build_payload,
        &pair_lists,
        cfg.morsel_rows,
    )
}

/// Morsel-parallel row filter: evaluates `pred` over `morsel_rows`-sized
/// ranges on the worker pool, then gathers the surviving rows once (the
/// sink). Semantics and row order match [`ops::filter`]; small inputs run
/// it directly. Used by FILTER evaluation in the core engine, where `pred`
/// decodes dictionary terms and is the expensive part.
pub fn parallel_filter<P>(table: &Table, pred: P, morsel_rows: usize) -> Table
where
    P: Fn(&Table, usize) -> bool + Sync,
{
    let n = table.num_rows();
    if n < MIN_PARALLEL_ROWS || pool::current().workers() <= 1 {
        return ops::filter(table, pred);
    }
    let ranges = morsel_ranges(n, morsel_rows);
    metric_counter!("columnar.pipeline.morsels").add(ranges.len() as u64);
    let pred = &pred;
    let tasks: Vec<_> = ranges
        .into_iter()
        .map(|range| {
            move |_worker: usize| range.filter(|&i| pred(table, i)).collect::<Vec<usize>>()
        })
        .collect();
    let lists = pool::current().run(tasks);
    let indices: Vec<usize> = lists.concat();
    metric_counter!("columnar.filter.calls").inc();
    metric_counter!("columnar.filter.in_rows").add(n as u64);
    metric_counter!("columnar.filter.out_rows").add(indices.len() as u64);
    table.gather(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::row_multiset;
    use crate::schema::Schema;

    fn random_table(schema: &[&str], n: usize, card: u32, seed: u64) -> Table {
        let mut state = seed.wrapping_add(0x853c49e6748fea9b);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % card
        };
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..schema.len()).map(|_| next()).collect())
            .collect();
        Table::from_rows(Schema::new(schema.iter().map(|s| s.to_string())), &rows)
    }

    fn materializing_plan(probe: &Table, filters: &[EqFilter], build: &Table) -> Table {
        let mut t = probe.clone();
        for f in filters {
            t = ops::select_eq(&t, f.col, f.value);
        }
        ops::natural_join(&t, build)
    }

    #[test]
    fn fused_matches_materializing_plan() {
        let probe = random_table(&["k", "a", "b"], 20_000, 16, 1);
        let build = random_table(&["k", "c"], 500, 16, 2);
        for filters in [
            vec![],
            vec![EqFilter { col: 1, value: 3 }],
            vec![EqFilter { col: 1, value: 3 }, EqFilter { col: 2, value: 7 }],
        ] {
            let fused = fused_filter_join(&probe, &filters, &build, &JoinConfig::default());
            let reference = materializing_plan(&probe, &filters, &build);
            assert_eq!(fused.schema(), reference.schema());
            assert_eq!(
                row_multiset(&fused),
                row_multiset(&reference),
                "filters={}",
                filters.len()
            );
        }
    }

    #[test]
    fn fused_small_morsels_match() {
        let probe = random_table(&["k", "a"], 10_000, 8, 3);
        let build = random_table(&["k", "b"], 300, 8, 4);
        let cfg = JoinConfig {
            morsel_rows: 101,
            ..JoinConfig::default()
        };
        let fused = fused_filter_join(&probe, &[EqFilter { col: 1, value: 2 }], &build, &cfg);
        let reference = materializing_plan(&probe, &[EqFilter { col: 1, value: 2 }], &build);
        assert_eq!(row_multiset(&fused), row_multiset(&reference));
    }

    #[test]
    fn fused_fallback_paths() {
        // Disjoint schemas → cross-join fallback via ops::natural_join.
        let probe = random_table(&["a"], 5000, 4, 5);
        let build = random_table(&["b"], 3, 4, 6);
        let fused = fused_filter_join(
            &probe,
            &[EqFilter { col: 0, value: 1 }],
            &build,
            &JoinConfig::default(),
        );
        let reference = materializing_plan(&probe, &[EqFilter { col: 0, value: 1 }], &build);
        assert_eq!(row_multiset(&fused), row_multiset(&reference));
        // Tiny probe → serial fallback.
        let probe = random_table(&["k", "a"], 50, 4, 7);
        let build = random_table(&["k", "b"], 20, 4, 8);
        let fused = fused_filter_join(
            &probe,
            &[EqFilter { col: 1, value: 1 }],
            &build,
            &JoinConfig::default(),
        );
        let reference = materializing_plan(&probe, &[EqFilter { col: 1, value: 1 }], &build);
        assert_eq!(row_multiset(&fused), row_multiset(&reference));
    }

    #[test]
    fn fused_elides_intermediate_bytes() {
        use crate::metrics;
        let _guard = metrics::test_lock();
        let probe = random_table(&["k", "a"], 30_000, 8, 9);
        let build = random_table(&["k", "b"], 200, 8, 10);
        let elided = metrics::counter("columnar.pipeline.bytes_elided");
        let concat_bytes = metrics::counter("columnar.concat.bytes_copied");
        metrics::set_enabled(true);
        let before = (elided.get(), concat_bytes.get());
        let out = fused_filter_join(
            &probe,
            &[EqFilter { col: 1, value: 3 }],
            &build,
            &JoinConfig::default(),
        );
        let delta = (elided.get() - before.0, concat_bytes.get() - before.1);
        metrics::set_enabled(false);
        assert!(out.num_rows() > 0);
        // ~1/8 of 30k rows survive the filter; each would have cost
        // 2 columns × 4 bytes in the materializing plan.
        assert!(delta.0 > 0, "no intermediate bytes elided");
        assert_eq!(delta.1, 0, "fused pipeline must not concat");
    }

    #[test]
    fn parallel_filter_matches_serial() {
        let t = random_table(&["a", "b"], 25_000, 100, 11);
        let pred = |t: &Table, i: usize| t.value(i, 0).is_multiple_of(3);
        let serial = ops::filter(&t, pred);
        let par = parallel_filter(&t, pred, 1000);
        assert_eq!(par.num_rows(), serial.num_rows());
        assert_eq!(row_multiset(&par), row_multiset(&serial));
        // Order is preserved too (morsels are concatenated in range order).
        assert_eq!(par.column(0), serial.column(0));
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        assert_eq!(morsel_ranges(0, 10).len(), 0);
        assert_eq!(morsel_ranges(10, 3), vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(morsel_ranges(5, 100), vec![0..5]);
    }
}
