//! Deterministic fault injection for the table store.
//!
//! Spark gets to assume that executors die, disks corrupt pages and HDFS
//! blocks go missing; its answer is lineage-based recomputation. To exercise
//! the analogous recovery paths in this reimplementation we need faults on
//! demand: a [`FaultInjector`] can be attached to a
//! [`TableStore`](crate::TableStore) and will, with configured
//! probabilities, fail reads or writes outright, flip bits in data as it
//! passes through, truncate payloads, or add latency.
//!
//! Everything is driven by a seeded splitmix64 stream, so a given
//! `(seed, operation sequence)` reproduces the exact same faults — tests can
//! assert on precise recovery behaviour instead of flaking. When no injector
//! is attached the store pays a single `Option` check per operation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Probabilities and knobs for a [`FaultInjector`].
///
/// All probabilities are in `[0, 1]`; the default config injects nothing.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability that a read fails with an I/O error before touching disk.
    pub read_error: f64,
    /// Probability that a write fails with an I/O error before touching disk.
    pub write_error: f64,
    /// Probability that a payload passing through has one random bit
    /// flipped.
    pub bit_flip: f64,
    /// Probability that a payload passing through is truncated to a random
    /// prefix.
    pub truncate: f64,
    /// Probability that a WAL append is *torn*: only a random proper prefix
    /// of the record reaches the log before the append fails — the on-disk
    /// image a process crash mid-`write` leaves behind.
    pub torn_append: f64,
    /// Deterministic crash switch: after this many write-side fault points
    /// have been passed, every subsequent one fails — permanently, as a dead
    /// process would. Enumerating `kill_after_ops = 0, 1, 2, …` visits every
    /// crash point of an operation sequence exactly once.
    pub kill_after_ops: Option<u64>,
    /// Fixed latency added to every read and write, in milliseconds.
    pub latency_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            read_error: 0.0,
            write_error: 0.0,
            bit_flip: 0.0,
            truncate: 0.0,
            torn_append: 0.0,
            kill_after_ops: None,
            latency_ms: 0,
        }
    }
}

/// Counters of faults actually injected, for test assertions and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads failed with an injected I/O error.
    pub read_errors: u64,
    /// Writes failed with an injected I/O error.
    pub write_errors: u64,
    /// Payloads that had a bit flipped.
    pub bit_flips: u64,
    /// Payloads that were truncated.
    pub truncations: u64,
    /// WAL appends that were torn (a prefix reached disk, then failure).
    pub torn_appends: u64,
    /// Operations failed by the `kill_after_ops` crash switch.
    pub kills: u64,
}

/// Deterministic, seeded fault injector (see module docs).
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    state: Mutex<u64>,
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    bit_flips: AtomicU64,
    truncations: AtomicU64,
    torn_appends: AtomicU64,
    kills: AtomicU64,
    /// Write-side fault points passed so far (drives `kill_after_ops`).
    ops: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector from a config.
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            cfg,
            state: Mutex::new(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
            read_errors: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            truncations: AtomicU64::new(0),
            torn_appends: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            ops: AtomicU64::new(0),
        }
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            read_errors: self.read_errors.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            torn_appends: self.torn_appends.load(Ordering::Relaxed),
            kills: self.kills.load(Ordering::Relaxed),
        }
    }

    /// Write-side fault points passed so far. Running a workload once with
    /// `kill_after_ops = None` and reading this counter tells a harness how
    /// many distinct crash points there are to enumerate.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Next value of the splitmix64 stream.
    fn next_u64(&self) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws against a probability; 0.0 never fires and consumes no stream
    /// state, keeping unrelated fault kinds independent of disabled ones.
    fn roll(&self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    fn sleep(&self) {
        if self.cfg.latency_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.cfg.latency_ms));
        }
    }

    /// A write-side crash point (see [`FaultConfig::kill_after_ops`]): once
    /// the configured number of points has been passed, this and every later
    /// call fail — the process is "dead". Placed before each durable state
    /// transition (table write, rename, WAL append, WAL truncate) so that
    /// enumerating `kill_after_ops` covers every on-disk intermediate state.
    pub fn crash_point(&self, what: &str) -> std::io::Result<()> {
        let Some(kill_after) = self.cfg.kill_after_ops else {
            self.ops.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        };
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if n >= kill_after {
            self.kills.fetch_add(1, Ordering::Relaxed);
            return Err(std::io::Error::other(format!(
                "injected crash at op {n} ({what})"
            )));
        }
        Ok(())
    }

    /// Called by the WAL before appending a record of `len` bytes. Besides
    /// the crash gate, may declare the append *torn*: `Ok(Some(prefix))`
    /// instructs the WAL to write only `prefix < len` bytes and then fail,
    /// leaving the torn tail for replay to discover.
    pub fn wal_append(&self, len: usize) -> std::io::Result<Option<usize>> {
        self.crash_point("wal.append")?;
        if len > 0 && self.roll(self.cfg.torn_append) {
            self.torn_appends.fetch_add(1, Ordering::Relaxed);
            return Ok(Some((self.next_u64() % len as u64) as usize));
        }
        Ok(None)
    }

    /// Called by the store before reading `name`; may fail the read.
    pub fn before_read(&self, name: &str) -> std::io::Result<()> {
        self.sleep();
        if self.roll(self.cfg.read_error) {
            self.read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(std::io::Error::other(format!(
                "injected read fault for table '{name}'"
            )));
        }
        Ok(())
    }

    /// Called by the store before writing `name`; may fail the write.
    pub fn before_write(&self, name: &str) -> std::io::Result<()> {
        self.sleep();
        self.crash_point(name)?;
        if self.roll(self.cfg.write_error) {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(std::io::Error::other(format!(
                "injected write fault for table '{name}'"
            )));
        }
        Ok(())
    }

    /// Possibly corrupts a payload in flight (bit flip and/or truncation).
    ///
    /// Applied to bytes read from disk before decoding and to bytes about to
    /// be written, modelling media corruption on either side. The v2
    /// checksum footer is what turns these silent corruptions into
    /// detectable [`ChecksumMismatch`](crate::ColumnarError::ChecksumMismatch)
    /// errors.
    pub fn mutate(&self, data: &mut Vec<u8>) {
        if !data.is_empty() && self.roll(self.cfg.bit_flip) {
            let idx = (self.next_u64() % data.len() as u64) as usize;
            let bit = (self.next_u64() % 8) as u8;
            data[idx] ^= 1 << bit;
            self.bit_flips.fetch_add(1, Ordering::Relaxed);
        }
        if !data.is_empty() && self.roll(self.cfg.truncate) {
            let keep = (self.next_u64() % data.len() as u64) as usize;
            data.truncate(keep);
            self.truncations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_injects_nothing() {
        let inj = FaultInjector::new(FaultConfig::default());
        for _ in 0..1000 {
            inj.before_read("t").unwrap();
            inj.before_write("t").unwrap();
            let mut data = vec![1, 2, 3];
            inj.mutate(&mut data);
            assert_eq!(data, vec![1, 2, 3]);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let inj = FaultInjector::new(FaultConfig {
                seed,
                read_error: 0.3,
                bit_flip: 0.5,
                ..FaultConfig::default()
            });
            let mut outcomes = Vec::new();
            for i in 0..200 {
                outcomes.push(inj.before_read("t").is_err());
                let mut data = vec![0u8; 16];
                inj.mutate(&mut data);
                outcomes.push(data.iter().any(|&b| b != 0));
                let _ = i;
            }
            outcomes
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn probabilities_roughly_honoured() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 7,
            read_error: 0.25,
            ..FaultConfig::default()
        });
        let mut failed = 0;
        for _ in 0..2000 {
            if inj.before_read("t").is_err() {
                failed += 1;
            }
        }
        assert!(
            (300..700).contains(&failed),
            "got {failed}/2000 failures at p=0.25"
        );
        assert_eq!(inj.stats().read_errors, failed);
    }

    #[test]
    fn kill_switch_is_permanent_once_tripped() {
        let inj = FaultInjector::new(FaultConfig {
            kill_after_ops: Some(3),
            ..FaultConfig::default()
        });
        for i in 0..3 {
            assert!(inj.crash_point("op").is_ok(), "op {i} should survive");
        }
        for _ in 0..5 {
            assert!(inj.crash_point("op").is_err(), "dead processes stay dead");
        }
        assert_eq!(inj.stats().kills, 5);
        assert_eq!(inj.op_count(), 8);
    }

    #[test]
    fn disabled_kill_switch_still_counts_ops() {
        let inj = FaultInjector::new(FaultConfig::default());
        for _ in 0..4 {
            inj.crash_point("op").unwrap();
        }
        assert_eq!(inj.op_count(), 4);
        assert_eq!(inj.stats().kills, 0);
    }

    #[test]
    fn torn_append_yields_proper_prefix() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            torn_append: 1.0,
            ..FaultConfig::default()
        });
        let prefix = inj.wal_append(64).unwrap().expect("append must tear");
        assert!(prefix < 64);
        assert_eq!(inj.stats().torn_appends, 1);
    }

    #[test]
    fn truncation_shortens_payload() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 1,
            truncate: 1.0,
            ..FaultConfig::default()
        });
        let mut data = vec![9u8; 64];
        inj.mutate(&mut data);
        assert!(data.len() < 64);
        assert_eq!(inj.stats().truncations, 1);
    }
}
