//! In-memory columnar tables of `u32` dictionary ids.

use crate::error::ColumnarError;
use crate::schema::Schema;

/// Sentinel id representing an unbound (NULL) value, produced by left outer
/// joins (SPARQL OPTIONAL) and UNION branches with disjoint variables.
/// Dictionaries never hand out this id (they would need 2^32 - 1 distinct
/// terms first, and `Dictionary::intern` panics on overflow before that).
pub const NULL_ID: u32 = u32::MAX;

/// A columnar table: a schema plus one `Vec<u32>` per column, all of equal
/// length.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    schema: Schema,
    cols: Vec<Vec<u32>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn empty(schema: Schema) -> Table {
        let cols = (0..schema.len()).map(|_| Vec::new()).collect();
        Table { schema, cols }
    }

    /// Creates a table from a schema and its columns.
    ///
    /// # Panics
    /// Panics if the column count or lengths are inconsistent.
    pub fn from_columns(schema: Schema, cols: Vec<Vec<u32>>) -> Table {
        assert_eq!(schema.len(), cols.len(), "column count mismatch");
        if let Some(first) = cols.first() {
            for c in &cols {
                assert_eq!(c.len(), first.len(), "column length mismatch");
            }
        }
        Table { schema, cols }
    }

    /// Creates a table from rows (convenient in tests).
    pub fn from_rows<R: AsRef<[u32]>>(schema: Schema, rows: &[R]) -> Table {
        let mut t = Table::empty(schema);
        for r in rows {
            t.push_row(r.as_ref());
        }
        t
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// A column by position.
    pub fn column(&self, idx: usize) -> &[u32] {
        &self.cols[idx]
    }

    /// A column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[u32], ColumnarError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| ColumnarError::UnknownColumn(name.to_string()))?;
        Ok(&self.cols[idx])
    }

    /// All columns.
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.cols
    }

    /// The value at `(row, col)`.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> u32 {
        self.cols[col][row]
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the schema.
    pub fn push_row(&mut self, row: &[u32]) {
        assert_eq!(row.len(), self.schema.len(), "row width mismatch");
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Copies row `row` of `src` onto the end of this table. Both tables
    /// must have the same arity (names may differ — used by rename-free
    /// gather loops).
    #[inline]
    pub fn push_row_from(&mut self, src: &Table, row: usize) {
        debug_assert_eq!(self.cols.len(), src.cols.len());
        for (dst, s) in self.cols.iter_mut().zip(&src.cols) {
            dst.push(s[row]);
        }
    }

    /// Appends every row of `src` to this table with one bulk
    /// `extend_from_slice` (memcpy) per column. Both tables must have the
    /// same arity (names may differ). Returns the number of payload bytes
    /// copied.
    pub fn extend_from_table(&mut self, src: &Table) -> usize {
        debug_assert_eq!(self.cols.len(), src.cols.len());
        let mut bytes = 0;
        for (dst, s) in self.cols.iter_mut().zip(&src.cols) {
            dst.extend_from_slice(s);
            bytes += s.len() * std::mem::size_of::<u32>();
        }
        bytes
    }

    /// Materializes row `row` into `buf` (cleared first).
    pub fn read_row(&self, row: usize, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c[row]));
    }

    /// Returns the row as a freshly allocated vector (test/debug helper).
    pub fn row_vec(&self, row: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[row]).collect()
    }

    /// Builds a new table containing the rows at `indices`, in order.
    pub fn gather(&self, indices: &[usize]) -> Table {
        let cols = self
            .cols
            .iter()
            .map(|c| indices.iter().map(|&i| c[i]).collect())
            .collect();
        Table {
            schema: self.schema.clone(),
            cols,
        }
    }

    /// Renames the table's columns wholesale (arity-preserving).
    pub fn with_schema(mut self, schema: Schema) -> Table {
        assert_eq!(schema.len(), self.schema.len(), "rename arity mismatch");
        self.schema = schema;
        self
    }

    /// Approximate in-memory payload size in bytes (column data only).
    pub fn byte_size(&self) -> usize {
        self.cols.iter().map(|c| c.len() * 4).sum()
    }

    /// Reserves row capacity in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.cols {
            c.reserve(additional);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(Schema::new(["s", "o"]), &[[1, 2], [3, 4], [5, 6]])
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(1, 0), 3);
        assert_eq!(t.column_by_name("o").unwrap(), &[2, 4, 6]);
        assert!(t.column_by_name("x").is_err());
    }

    #[test]
    fn push_and_read_row() {
        let mut t = sample();
        t.push_row(&[7, 8]);
        assert_eq!(t.num_rows(), 4);
        let mut buf = Vec::new();
        t.read_row(3, &mut buf);
        assert_eq!(buf, vec![7, 8]);
    }

    #[test]
    fn gather_selects_rows() {
        let t = sample();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.row_vec(0), vec![5, 6]);
        assert_eq!(g.row_vec(1), vec![1, 2]);
    }

    #[test]
    fn rename_preserves_data() {
        let t = sample().with_schema(Schema::new(["x", "y"]));
        assert_eq!(t.column_by_name("x").unwrap(), &[1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        sample().push_row(&[1]);
    }

    #[test]
    fn byte_size_counts_payload() {
        assert_eq!(sample().byte_size(), 3 * 2 * 4);
    }

    #[test]
    fn extend_from_table_bulk_copies() {
        let mut t = sample();
        let other = Table::from_rows(Schema::new(["s", "o"]), &[[7, 8], [9, 10]]);
        let bytes = t.extend_from_table(&other);
        assert_eq!(bytes, 2 * 2 * 4);
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.row_vec(3), vec![7, 8]);
        assert_eq!(t.row_vec(4), vec![9, 10]);
        // Matches the row-by-row path exactly.
        let mut rowwise = sample();
        for r in 0..other.num_rows() {
            rowwise.push_row_from(&other, r);
        }
        assert_eq!(t, rowwise);
    }
}
