//! Table schemas: ordered lists of named `u32` columns.

use std::sync::Arc;

/// A column name. `Arc<str>` keeps schema clones cheap — query plans copy
/// schemas on every projection/rename.
pub type ColName = Arc<str>;

/// An ordered list of column names. All columns hold `u32` dictionary ids,
/// so the schema is just the names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    cols: Vec<ColName>,
}

impl Schema {
    /// Builds a schema from column names.
    ///
    /// # Panics
    /// Panics on duplicate column names — relational schemas downstream
    /// (variable names) are always distinct.
    pub fn new<I, S>(names: I) -> Schema
    where
        I: IntoIterator<Item = S>,
        S: Into<ColName>,
    {
        let cols: Vec<ColName> = names.into_iter().map(Into::into).collect();
        for (i, c) in cols.iter().enumerate() {
            assert!(
                !cols[..i].contains(c),
                "duplicate column name in schema: {c}"
            );
        }
        Schema { cols }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| &**c == name)
    }

    /// True if the schema contains the named column.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Column names in order.
    pub fn names(&self) -> &[ColName] {
        &self.cols
    }

    /// The name at a position.
    pub fn name(&self, idx: usize) -> &ColName {
        &self.cols[idx]
    }

    /// Column names shared with another schema, in this schema's order.
    pub fn common_columns(&self, other: &Schema) -> Vec<ColName> {
        self.cols
            .iter()
            .filter(|c| other.contains(c))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup() {
        let s = Schema::new(["s", "o"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("s"), Some(0));
        assert_eq!(s.index_of("o"), Some(1));
        assert_eq!(s.index_of("p"), None);
        assert!(s.contains("o"));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicates_rejected() {
        Schema::new(["x", "x"]);
    }

    #[test]
    fn common_columns_in_left_order() {
        let a = Schema::new(["x", "y", "z"]);
        let b = Schema::new(["z", "w", "x"]);
        let common: Vec<String> = a.common_columns(&b).iter().map(|c| c.to_string()).collect();
        assert_eq!(common, vec!["x", "z"]);
    }
}
