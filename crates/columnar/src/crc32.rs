//! CRC-32 (IEEE 802.3 polynomial, reflected) implemented in-crate.
//!
//! The build environment is offline, so rather than pulling in a checksum
//! crate we carry the classic table-driven implementation. This is the same
//! polynomial Parquet uses for its optional page-level CRC field, which the
//! v2 table footer emulates (see DESIGN.md, "Fault tolerance").

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 checksum of `data`.
///
/// Matches the standard zlib/`crc32fast` output: initial value `!0`, final
/// XOR `!0`, reflected input and output.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Streaming update: feed a raw (pre-final-XOR) state through more bytes.
fn update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn detects_single_byte_changes() {
        let base = b"hello columnar world".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut m = base.clone();
                m[i] ^= flip;
                assert_ne!(crc32(&m), c0, "flip {flip:#x} at {i} undetected");
            }
        }
    }
}
