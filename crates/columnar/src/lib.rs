//! Columnar relational execution substrate.
//!
//! This crate is the stand-in for Spark SQL + Parquet in the S2RDF paper: a
//! small in-memory columnar engine over `u32` (dictionary-id) columns with
//! the relational operators the SPARQL compiler needs — scans with
//! selections, projections/renames, natural hash joins (optionally
//! data-parallel and partitioned, mirroring Spark's shuffle-hash join),
//! semi joins, left outer joins, union, distinct, sort and slice — plus a
//! compressed on-disk table store standing in for Parquet files on HDFS.
//!
//! All values are dictionary ids; [`NULL_ID`] marks an unbound value (used
//! by OPTIONAL's left outer join).

pub mod bitmap;
pub mod chunk;
pub mod crc32;
pub mod error;
pub mod exec;
pub mod fault;
pub mod io;
pub mod metrics;
pub mod ops;
pub mod pipeline;
pub mod pool;
pub mod schema;
pub mod table;
pub mod wal;

pub use bitmap::Bitmap;
pub use chunk::{CompressedTable, ScanStats, SidewaysFilter, WriteOptions};
pub use error::ColumnarError;
pub use fault::{FaultConfig, FaultInjector, FaultStats};
pub use io::{TableStore, VerifyReport};
pub use metrics::{MetricsSnapshot, SpanTimer};
pub use pool::{PoolStats, WorkerPool};
pub use schema::{ColName, Schema};
pub use table::{Table, NULL_ID};
pub use wal::{Wal, WalStatus};
