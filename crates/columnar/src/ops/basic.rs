//! Selections and projections.

use crate::error::ColumnarError;
use crate::metric_counter;
use crate::schema::Schema;
use crate::table::Table;

/// Keeps the rows for which `pred(table, row_index)` returns true.
pub fn filter<F: Fn(&Table, usize) -> bool>(table: &Table, pred: F) -> Table {
    let indices: Vec<usize> = (0..table.num_rows()).filter(|&i| pred(table, i)).collect();
    metric_counter!("columnar.filter.calls").inc();
    metric_counter!("columnar.filter.in_rows").add(table.num_rows() as u64);
    metric_counter!("columnar.filter.out_rows").add(indices.len() as u64);
    table.gather(&indices)
}

/// Fast-path selection `column = value` (the WHERE clauses emitted for bound
/// subjects/objects in triple patterns). The comparison runs through the
/// chunked bitmap kernel ([`super::kernels::eq_const`]), so the scan
/// auto-vectorizes.
pub fn select_eq(table: &Table, col: usize, value: u32) -> Table {
    let bm = super::kernels::eq_const(table.column(col), value);
    metric_counter!("columnar.select_eq.calls").inc();
    metric_counter!("columnar.select_eq.in_rows").add(table.num_rows() as u64);
    metric_counter!("columnar.select_eq.out_rows").add(bm.count_ones() as u64);
    bm.gather(table)
}

/// Projects (and reorders) the named columns.
pub fn project(table: &Table, names: &[&str]) -> Result<Table, ColumnarError> {
    let pairs: Vec<(&str, &str)> = names.iter().map(|&n| (n, n)).collect();
    project_rename(table, &pairs)
}

/// Projects columns with renames: each `(source, target)` pair selects the
/// `source` column and exposes it as `target`. This is the relational
/// `π[s → x, o → y]` used when mapping a triple pattern's columns to its
/// variable names (paper Alg. 2).
pub fn project_rename(table: &Table, pairs: &[(&str, &str)]) -> Result<Table, ColumnarError> {
    metric_counter!("columnar.project.calls").inc();
    metric_counter!("columnar.project.in_rows").add(table.num_rows() as u64);
    let mut cols = Vec::with_capacity(pairs.len());
    for (src, _) in pairs {
        cols.push(table.column_by_name(src)?.to_vec());
    }
    let schema = Schema::new(pairs.iter().map(|(_, dst)| dst.to_string()));
    Ok(Table::from_columns(schema, cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            Schema::new(["s", "o"]),
            &[[1, 10], [2, 20], [1, 30], [3, 10]],
        )
    }

    #[test]
    fn filter_by_predicate() {
        let t = sample();
        let f = filter(&t, |t, i| t.value(i, 1) >= 20);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column(1), &[20, 30]);
    }

    #[test]
    fn select_eq_matches() {
        let t = sample();
        let sel = select_eq(&t, 0, 1);
        assert_eq!(sel.num_rows(), 2);
        assert_eq!(sel.column(1), &[10, 30]);
        assert!(select_eq(&t, 0, 99).is_empty());
    }

    #[test]
    fn project_reorders() {
        let t = sample();
        let p = project(&t, &["o", "s"]).unwrap();
        assert_eq!(p.schema().names()[0].as_ref(), "o");
        assert_eq!(p.row_vec(0), vec![10, 1]);
        assert!(project(&t, &["nope"]).is_err());
    }

    #[test]
    fn project_rename_binds_variables() {
        let t = sample();
        let p = project_rename(&t, &[("s", "x"), ("o", "y")]).unwrap();
        assert!(p.schema().contains("x"));
        assert!(p.schema().contains("y"));
        assert_eq!(p.column_by_name("x").unwrap(), t.column(0));
    }

    #[test]
    fn duplicate_source_column_allowed() {
        // ?x p ?x patterns project the same source twice under two names.
        let t = sample();
        let p = project_rename(&t, &[("s", "a"), ("s", "b")]).unwrap();
        assert_eq!(
            p.column_by_name("a").unwrap(),
            p.column_by_name("b").unwrap()
        );
    }
}
