//! Union and duplicate elimination.

use rustc_hash::FxHashSet;

use crate::metric_counter;
use crate::schema::Schema;
use crate::table::{Table, NULL_ID};

/// SPARQL UNION: concatenates two solution tables. The result schema is the
/// left schema followed by right-only columns; a branch's missing columns
/// are padded with [`NULL_ID`] (unbound).
pub fn union(left: &Table, right: &Table) -> Table {
    let mut names: Vec<String> = left
        .schema()
        .names()
        .iter()
        .map(|c| c.to_string())
        .collect();
    for c in right.schema().names() {
        if !left.schema().contains(c) {
            names.push(c.to_string());
        }
    }
    let schema = Schema::new(names);
    let mut out = Table::empty(schema.clone());
    out.reserve(left.num_rows() + right.num_rows());

    // Column mapping for each branch: output column -> source column index.
    let left_map: Vec<Option<usize>> = schema
        .names()
        .iter()
        .map(|c| left.schema().index_of(c))
        .collect();
    let right_map: Vec<Option<usize>> = schema
        .names()
        .iter()
        .map(|c| right.schema().index_of(c))
        .collect();

    let mut row = Vec::with_capacity(schema.len());
    for (src, map) in [(left, &left_map), (right, &right_map)] {
        for i in 0..src.num_rows() {
            row.clear();
            row.extend(map.iter().map(|m| match m {
                Some(c) => src.value(i, *c),
                None => NULL_ID,
            }));
            out.push_row(&row);
        }
    }
    metric_counter!("columnar.union.calls").inc();
    metric_counter!("columnar.union.out_rows").add(out.num_rows() as u64);
    out
}

/// Removes duplicate rows, keeping first occurrences in order (SPARQL
/// DISTINCT).
pub fn distinct(table: &Table) -> Table {
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    seen.reserve(table.num_rows());
    let mut indices = Vec::new();
    let mut row = Vec::with_capacity(table.schema().len());
    for i in 0..table.num_rows() {
        table.read_row(i, &mut row);
        if seen.insert(row.clone()) {
            indices.push(i);
        }
    }
    metric_counter!("columnar.distinct.calls").inc();
    metric_counter!("columnar.distinct.in_rows").add(table.num_rows() as u64);
    metric_counter!("columnar.distinct.out_rows").add(indices.len() as u64);
    table.gather(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_same_schema() {
        let a = Table::from_rows(Schema::new(["x"]), &[[1], [2]]);
        let b = Table::from_rows(Schema::new(["x"]), &[[2], [3]]);
        let u = union(&a, &b);
        assert_eq!(u.num_rows(), 4); // bag semantics: duplicates retained
        assert_eq!(u.column(0), &[1, 2, 2, 3]);
    }

    #[test]
    fn union_pads_disjoint_vars() {
        let a = Table::from_rows(Schema::new(["x"]), &[[1]]);
        let b = Table::from_rows(Schema::new(["y"]), &[[9]]);
        let u = union(&a, &b);
        assert_eq!(u.schema().len(), 2);
        assert_eq!(u.row_vec(0), vec![1, NULL_ID]);
        assert_eq!(u.row_vec(1), vec![NULL_ID, 9]);
    }

    #[test]
    fn union_aligns_overlapping_vars() {
        let a = Table::from_rows(Schema::new(["x", "y"]), &[[1, 2]]);
        let b = Table::from_rows(Schema::new(["y", "z"]), &[[5, 6]]);
        let u = union(&a, &b);
        assert_eq!(u.schema().len(), 3); // x, y, z
        assert_eq!(u.row_vec(0), vec![1, 2, NULL_ID]);
        assert_eq!(u.row_vec(1), vec![NULL_ID, 5, 6]);
    }

    #[test]
    fn distinct_removes_duplicates_stably() {
        let t = Table::from_rows(
            Schema::new(["a", "b"]),
            &[[1, 2], [3, 4], [1, 2], [3, 4], [5, 6]],
        );
        let d = distinct(&t);
        assert_eq!(d.num_rows(), 3);
        assert_eq!(d.row_vec(0), vec![1, 2]);
        assert_eq!(d.row_vec(1), vec![3, 4]);
        assert_eq!(d.row_vec(2), vec![5, 6]);
    }

    #[test]
    fn distinct_on_empty() {
        let t = Table::empty(Schema::new(["a"]));
        assert!(distinct(&t).is_empty());
    }
}
