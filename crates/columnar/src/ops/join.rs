//! Hash joins: inner (natural and keyed), semi, and left outer.
//!
//! All joins build a hash table on the smaller input and probe with the
//! larger one. Join keys of one or two columns are packed into a `u64`
//! (the overwhelmingly common case in SPARQL BGPs); wider keys fall back to
//! `Vec<u32>` keys reusing a single scratch buffer across probe rows.
//!
//! Every operator records once-per-call metrics (build/probe/output rows
//! and wall time) into the global [`crate::metrics`] registry — the
//! shared-memory analogue of Spark's per-stage shuffle read/write stats.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::metrics::SpanTimer;
use crate::schema::Schema;
use crate::table::{Table, NULL_ID};
use crate::{metric_counter, metric_histogram};

/// Hash map from packed key to the row indices holding it.
enum KeyIndex {
    Narrow(FxHashMap<u64, Vec<u32>>),
    Wide(FxHashMap<Vec<u32>, Vec<u32>>),
}

#[inline]
fn pack2(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

fn build_index(table: &Table, keys: &[usize]) -> KeyIndex {
    match keys {
        [k] => {
            let col = table.column(*k);
            let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            map.reserve(col.len());
            for (i, &v) in col.iter().enumerate() {
                map.entry(v as u64).or_default().push(i as u32);
            }
            KeyIndex::Narrow(map)
        }
        [k1, k2] => {
            let (c1, c2) = (table.column(*k1), table.column(*k2));
            let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            map.reserve(c1.len());
            for i in 0..c1.len() {
                map.entry(pack2(c1[i], c2[i])).or_default().push(i as u32);
            }
            KeyIndex::Narrow(map)
        }
        _ => {
            let mut map: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
            for i in 0..table.num_rows() {
                let key: Vec<u32> = keys.iter().map(|&k| table.value(i, k)).collect();
                map.entry(key).or_default().push(i as u32);
            }
            KeyIndex::Wide(map)
        }
    }
}

impl KeyIndex {
    /// Looks up the build-side rows matching `row` of `table`.
    ///
    /// `scratch` is a caller-owned buffer reused across probe rows so the
    /// wide-key path performs zero allocations per probe (it previously
    /// built a fresh `Vec<u32>` per row).
    fn probe<'a>(
        &'a self,
        table: &Table,
        keys: &[usize],
        row: usize,
        scratch: &mut Vec<u32>,
    ) -> Option<&'a [u32]> {
        match (self, keys) {
            (KeyIndex::Narrow(map), [k]) => {
                map.get(&(table.value(row, *k) as u64)).map(Vec::as_slice)
            }
            (KeyIndex::Narrow(map), [k1, k2]) => map
                .get(&pack2(table.value(row, *k1), table.value(row, *k2)))
                .map(Vec::as_slice),
            (KeyIndex::Wide(map), keys) => {
                scratch.clear();
                scratch.extend(keys.iter().map(|&k| table.value(row, k)));
                map.get(scratch.as_slice()).map(Vec::as_slice)
            }
            _ => unreachable!("index arity mismatch"),
        }
    }

    fn num_keys(&self) -> usize {
        match self {
            KeyIndex::Narrow(map) => map.len(),
            KeyIndex::Wide(map) => map.len(),
        }
    }
}

/// Output schema of a join: all left columns plus the right columns that are
/// not join keys. Panics on residual name collisions (the compiler never
/// produces them).
pub(crate) fn join_schema(
    left: &Table,
    right: &Table,
    right_keys: &[usize],
) -> (Schema, Vec<usize>) {
    let mut names: Vec<String> = left
        .schema()
        .names()
        .iter()
        .map(|c| c.to_string())
        .collect();
    let mut right_payload = Vec::new();
    for (idx, name) in right.schema().names().iter().enumerate() {
        if right_keys.contains(&idx) {
            continue;
        }
        assert!(
            !left.schema().contains(name),
            "non-key column name collision in join: {name}"
        );
        names.push(name.to_string());
        right_payload.push(idx);
    }
    (Schema::new(names), right_payload)
}

/// A reusable build-side hash index for [`hash_join_probe`].
///
/// Engines evaluate left-deep BGP plans where consecutive triple patterns
/// often share the same join variable (star-shaped queries around one
/// subject are the common case in WatDiv and the paper's workloads). The
/// build side of those joins can be indexed once and probed by every
/// subsequent pattern — the shared-memory analogue of Spark reusing one
/// broadcast relation across consecutive stages. The index remembers the
/// key-column positions it was built on so stale reuse fails loudly.
pub struct BuildIndex {
    index: KeyIndex,
    keys: Vec<usize>,
}

impl BuildIndex {
    /// Key column positions (in the build-side table) the index covers.
    pub fn key_positions(&self) -> &[usize] {
        &self.keys
    }

    /// Number of distinct join keys in the index.
    pub fn num_keys(&self) -> usize {
        self.index.num_keys()
    }
}

/// Builds a hash index over `keys` of `table` for repeated probing with
/// [`hash_join_probe`]. The caller is responsible for not mutating (or
/// replacing) the build table between probes.
pub fn build_join_index(table: &Table, keys: &[usize]) -> BuildIndex {
    let index = build_index(table, keys);
    metric_counter!("columnar.join.index_builds").inc();
    metric_counter!("columnar.join.build_distinct_keys").add(index.num_keys() as u64);
    BuildIndex {
        index,
        keys: keys.to_vec(),
    }
}

/// Inner hash join probing a prebuilt [`BuildIndex`].
///
/// `build_is_left` fixes the output orientation: when `true` the result is
/// the build columns followed by the probe non-key columns — identical to
/// `hash_join_on(build, probe, ..)` — otherwise the probe columns followed
/// by the build non-key columns. Probing an index built on a different
/// table/key arity is a logic error (asserted).
pub fn hash_join_probe(
    build: &Table,
    index: &BuildIndex,
    probe: &Table,
    probe_keys: &[usize],
    build_is_left: bool,
) -> Table {
    assert_eq!(
        index.keys.len(),
        probe_keys.len(),
        "probe key arity does not match the prebuilt index"
    );
    let _span = SpanTimer::start(metric_histogram!("columnar.join.wall_micros"));
    let mut scratch: Vec<u32> = Vec::new();
    let out = if build_is_left {
        let (schema, right_payload) = join_schema(build, probe, probe_keys);
        let mut out = Table::empty(schema);
        for probe_row in 0..probe.num_rows() {
            if let Some(matches) = index
                .index
                .probe(probe, probe_keys, probe_row, &mut scratch)
            {
                for &b in matches {
                    push_joined(
                        &mut out,
                        build,
                        b as usize,
                        probe,
                        probe_row,
                        &right_payload,
                    );
                }
            }
        }
        out
    } else {
        let (schema, right_payload) = join_schema(probe, build, &index.keys);
        let mut out = Table::empty(schema);
        for probe_row in 0..probe.num_rows() {
            if let Some(matches) = index
                .index
                .probe(probe, probe_keys, probe_row, &mut scratch)
            {
                for &b in matches {
                    push_joined(
                        &mut out,
                        probe,
                        probe_row,
                        build,
                        b as usize,
                        &right_payload,
                    );
                }
            }
        }
        out
    };
    metric_counter!("columnar.join.calls").inc();
    metric_counter!("columnar.join.build_rows").add(build.num_rows() as u64);
    metric_counter!("columnar.join.probe_rows").add(probe.num_rows() as u64);
    metric_counter!("columnar.join.out_rows").add(out.num_rows() as u64);
    out
}

/// Inner hash join on explicit key-column pairs `(left_col, right_col)`.
///
/// The output contains every left column followed by the right non-key
/// columns.
pub fn hash_join_on(left: &Table, right: &Table, keys: &[(usize, usize)]) -> Table {
    let _span = SpanTimer::start(metric_histogram!("columnar.join.wall_micros"));
    let left_keys: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
    let right_keys: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
    let (schema, right_payload) = join_schema(left, right, &right_keys);
    let mut out = Table::empty(schema);
    let mut scratch: Vec<u32> = Vec::new();

    // Build on the smaller side, probe with the larger.
    let (build_rows, probe_rows);
    if left.num_rows() <= right.num_rows() {
        (build_rows, probe_rows) = (left.num_rows(), right.num_rows());
        let index = build_index(left, &left_keys);
        metric_counter!("columnar.join.build_distinct_keys").add(index.num_keys() as u64);
        for probe_row in 0..right.num_rows() {
            if let Some(matches) = index.probe(right, &right_keys, probe_row, &mut scratch) {
                for &build_row in matches {
                    push_joined(
                        &mut out,
                        left,
                        build_row as usize,
                        right,
                        probe_row,
                        &right_payload,
                    );
                }
            }
        }
    } else {
        (build_rows, probe_rows) = (right.num_rows(), left.num_rows());
        let index = build_index(right, &right_keys);
        metric_counter!("columnar.join.build_distinct_keys").add(index.num_keys() as u64);
        for probe_row in 0..left.num_rows() {
            if let Some(matches) = index.probe(left, &left_keys, probe_row, &mut scratch) {
                for &build_row in matches {
                    push_joined(
                        &mut out,
                        left,
                        probe_row,
                        right,
                        build_row as usize,
                        &right_payload,
                    );
                }
            }
        }
    }
    metric_counter!("columnar.join.calls").inc();
    metric_counter!("columnar.join.build_rows").add(build_rows as u64);
    metric_counter!("columnar.join.probe_rows").add(probe_rows as u64);
    metric_counter!("columnar.join.out_rows").add(out.num_rows() as u64);
    out
}

#[inline]
fn push_joined(
    out: &mut Table,
    left: &Table,
    left_row: usize,
    right: &Table,
    right_row: usize,
    right_payload: &[usize],
) {
    let mut row = Vec::with_capacity(out.schema().len());
    for c in 0..left.schema().len() {
        row.push(left.value(left_row, c));
    }
    for &c in right_payload {
        row.push(right.value(right_row, c));
    }
    out.push_row(&row);
}

/// Natural inner join on all shared column names. Falls back to a cross
/// product when the schemas are disjoint (SPARQL cross join).
///
/// ```
/// use s2rdf_columnar::{ops, Schema, Table};
///
/// let follows = Table::from_rows(Schema::new(["x", "y"]), &[[0, 1], [1, 2]]);
/// let likes = Table::from_rows(Schema::new(["y", "w"]), &[[2, 9]]);
/// let joined = ops::natural_join(&follows, &likes);
/// assert_eq!(joined.num_rows(), 1);
/// assert_eq!(joined.row_vec(0), vec![1, 2, 9]);
/// ```
pub fn natural_join(left: &Table, right: &Table) -> Table {
    let common = left.schema().common_columns(right.schema());
    if common.is_empty() {
        return cross_join(left, right);
    }
    let keys: Vec<(usize, usize)> = common
        .iter()
        .map(|c| {
            (
                left.schema().index_of(c).unwrap(),
                right.schema().index_of(c).unwrap(),
            )
        })
        .collect();
    hash_join_on(left, right, &keys)
}

fn cross_join(left: &Table, right: &Table) -> Table {
    metric_counter!("columnar.cross_join.calls").inc();
    let names: Vec<String> = left
        .schema()
        .names()
        .iter()
        .chain(right.schema().names())
        .map(|c| c.to_string())
        .collect();
    let mut out = Table::empty(Schema::new(names));
    for l in 0..left.num_rows() {
        for r in 0..right.num_rows() {
            let mut row: Vec<u32> = (0..left.schema().len()).map(|c| left.value(l, c)).collect();
            row.extend((0..right.schema().len()).map(|c| right.value(r, c)));
            out.push_row(&row);
        }
    }
    out
}

/// Left semi join `left ⋉ right` on a single key pair: the rows of `left`
/// whose key value appears in `right`'s key column. This is the primitive
/// that materializes ExtVP partitions (paper §5.2).
pub fn semi_join_on(left: &Table, left_key: usize, right: &Table, right_key: usize) -> Table {
    let _span = SpanTimer::start(metric_histogram!("columnar.semi_join.wall_micros"));
    let mut probe: FxHashSet<u32> = FxHashSet::default();
    probe.reserve(right.num_rows());
    probe.extend(right.column(right_key).iter().copied());
    let col = left.column(left_key);
    let indices: Vec<usize> = col
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| probe.contains(&v).then_some(i))
        .collect();
    metric_counter!("columnar.semi_join.calls").inc();
    metric_counter!("columnar.semi_join.in_rows").add(left.num_rows() as u64);
    metric_counter!("columnar.semi_join.out_rows").add(indices.len() as u64);
    left.gather(&indices)
}

/// Natural left outer join (SPARQL OPTIONAL): left rows without a match are
/// emitted once with the right-only columns set to [`NULL_ID`].
pub fn left_outer_join(left: &Table, right: &Table) -> Table {
    let _span = SpanTimer::start(metric_histogram!("columnar.left_outer.wall_micros"));
    metric_counter!("columnar.left_outer.calls").inc();
    let common = left.schema().common_columns(right.schema());
    let left_keys: Vec<usize> = common
        .iter()
        .map(|c| left.schema().index_of(c).unwrap())
        .collect();
    let right_keys: Vec<usize> = common
        .iter()
        .map(|c| right.schema().index_of(c).unwrap())
        .collect();
    let (schema, right_payload) = join_schema(left, right, &right_keys);
    let mut out = Table::empty(schema);

    if common.is_empty() {
        // Degenerate case: OPTIONAL with no shared variables is a cross
        // product unless the right side is empty, where the left survives
        // padded (there are no right-only columns to pad only if right is
        // fully keyed, so pad all right columns).
        if right.is_empty() {
            for l in 0..left.num_rows() {
                let mut row: Vec<u32> =
                    (0..left.schema().len()).map(|c| left.value(l, c)).collect();
                row.extend(std::iter::repeat_n(NULL_ID, right_payload.len()));
                out.push_row(&row);
            }
            return out;
        }
        return cross_join(left, right);
    }

    let index = build_index(right, &right_keys);
    let mut scratch: Vec<u32> = Vec::new();
    let mut padded = 0u64;
    for l in 0..left.num_rows() {
        match index.probe(left, &left_keys, l, &mut scratch) {
            Some(matches) => {
                for &r in matches {
                    push_joined(&mut out, left, l, right, r as usize, &right_payload);
                }
            }
            None => {
                let mut row: Vec<u32> =
                    (0..left.schema().len()).map(|c| left.value(l, c)).collect();
                row.extend(std::iter::repeat_n(NULL_ID, right_payload.len()));
                out.push_row(&row);
                padded += 1;
            }
        }
    }
    metric_counter!("columnar.left_outer.padded_rows").add(padded);
    metric_counter!("columnar.left_outer.out_rows").add(out.num_rows() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn follows() -> Table {
        // VP_follows from the paper's running example G1 (ids: A=0 B=1 C=2 D=3).
        Table::from_rows(Schema::new(["x", "y"]), &[[0, 1], [1, 2], [1, 3], [2, 3]])
    }

    fn likes() -> Table {
        // VP_likes (I1=4, I2=5).
        Table::from_rows(Schema::new(["y", "w"]), &[[0, 4], [0, 5], [2, 5]])
    }

    #[test]
    fn natural_join_single_key() {
        // follows(x,y) ⋈ likes(y,w): y ∈ {1,2,3} from follows, likes has y ∈ {0,2}.
        let j = natural_join(&follows(), &likes());
        assert_eq!(j.schema().names().len(), 3);
        assert_eq!(j.num_rows(), 1); // only y=2 matches: (1,2)⋈(2,5)
        assert_eq!(j.row_vec(0), vec![1, 2, 5]);
    }

    #[test]
    fn join_is_symmetric_in_cardinality() {
        let a = natural_join(&follows(), &likes());
        let b = natural_join(&likes(), &follows());
        assert_eq!(a.num_rows(), b.num_rows());
    }

    #[test]
    fn multi_key_join() {
        let l = Table::from_rows(Schema::new(["a", "b", "c"]), &[[1, 2, 9], [1, 3, 8]]);
        let r = Table::from_rows(Schema::new(["a", "b", "d"]), &[[1, 2, 7], [1, 9, 6]]);
        let j = natural_join(&l, &r);
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row_vec(0), vec![1, 2, 9, 7]);
    }

    #[test]
    fn wide_key_join_falls_back() {
        let l = Table::from_rows(
            Schema::new(["a", "b", "c", "x"]),
            &[[1, 2, 3, 10], [4, 5, 6, 11]],
        );
        let r = Table::from_rows(
            Schema::new(["a", "b", "c", "y"]),
            &[[1, 2, 3, 20], [4, 5, 0, 21]],
        );
        let j = natural_join(&l, &r);
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row_vec(0), vec![1, 2, 3, 10, 20]);
    }

    #[test]
    fn duplicate_keys_multiply() {
        let l = Table::from_rows(Schema::new(["k", "a"]), &[[1, 0], [1, 1]]);
        let r = Table::from_rows(Schema::new(["k", "b"]), &[[1, 2], [1, 3], [1, 4]]);
        let j = natural_join(&l, &r);
        assert_eq!(j.num_rows(), 6);
    }

    #[test]
    fn disjoint_schemas_cross_join() {
        let l = Table::from_rows(Schema::new(["a"]), &[[1], [2]]);
        let r = Table::from_rows(Schema::new(["b"]), &[[3], [4], [5]]);
        let j = natural_join(&l, &r);
        assert_eq!(j.num_rows(), 6);
        assert_eq!(j.schema().len(), 2);
    }

    #[test]
    fn semi_join_reduces() {
        // The paper's Fig. 8: VP_follows ⋉(o=s) VP_likes = {(B,C)}.
        let f = follows().with_schema(Schema::new(["s", "o"]));
        let l = likes().with_schema(Schema::new(["s", "o"]));
        let red = semi_join_on(&f, 1, &l, 0);
        assert_eq!(red.num_rows(), 1);
        assert_eq!(red.row_vec(0), vec![1, 2]); // (B, C)
    }

    #[test]
    fn semi_join_keeps_duplicates_of_left() {
        let l = Table::from_rows(Schema::new(["s", "o"]), &[[1, 5], [1, 5], [2, 6]]);
        let r = Table::from_rows(Schema::new(["s", "o"]), &[[5, 0]]);
        let red = semi_join_on(&l, 1, &r, 0);
        assert_eq!(red.num_rows(), 2);
    }

    #[test]
    fn left_outer_pads_nulls() {
        let l = Table::from_rows(Schema::new(["x", "y"]), &[[1, 2], [3, 4]]);
        let r = Table::from_rows(Schema::new(["y", "z"]), &[[2, 9]]);
        let j = left_outer_join(&l, &r);
        assert_eq!(j.num_rows(), 2);
        let rows: Vec<Vec<u32>> = (0..2).map(|i| j.row_vec(i)).collect();
        assert!(rows.contains(&vec![1, 2, 9]));
        assert!(rows.contains(&vec![3, 4, NULL_ID]));
    }

    #[test]
    fn left_outer_with_empty_right() {
        let l = Table::from_rows(Schema::new(["x"]), &[[1]]);
        let r = Table::empty(Schema::new(["y", "z"]));
        let j = left_outer_join(&l, &r);
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row_vec(0), vec![1, NULL_ID, NULL_ID]);
    }

    #[test]
    fn prebuilt_index_matches_hash_join_on_both_orientations() {
        let acc = follows().with_schema(Schema::new(["x", "j"]));
        let pat = likes().with_schema(Schema::new(["j", "w"]));
        let j = acc.schema().index_of("j").unwrap();
        let pj = pat.schema().index_of("j").unwrap();
        let index = build_join_index(&acc, &[j]);
        assert_eq!(index.key_positions(), &[j]);

        // build-as-left matches hash_join_on(acc, pat, ..) exactly.
        let via_index = hash_join_probe(&acc, &index, &pat, &[pj], true);
        let direct = hash_join_on(&acc, &pat, &[(j, pj)]);
        assert_eq!(via_index, direct);

        // build-as-right matches hash_join_on(pat, acc, ..) exactly.
        let via_index = hash_join_probe(&acc, &index, &pat, &[pj], false);
        let direct = hash_join_on(&pat, &acc, &[(pj, j)]);
        assert_eq!(via_index, direct);
    }

    #[test]
    fn prebuilt_index_is_reusable_across_probes() {
        // One build, two probes — the star-query pattern the engine cache
        // exploits for consecutive patterns sharing a join variable.
        let acc = Table::from_rows(Schema::new(["s", "a"]), &[[1, 10], [2, 20], [2, 21]]);
        let s = 0;
        let index = build_join_index(&acc, &[s]);
        let p1 = Table::from_rows(Schema::new(["s", "b"]), &[[2, 30]]);
        let p2 = Table::from_rows(Schema::new(["s", "c"]), &[[1, 40], [2, 41]]);
        let j1 = hash_join_probe(&acc, &index, &p1, &[0], true);
        assert_eq!(j1, hash_join_on(&acc, &p1, &[(s, 0)]));
        let j2 = hash_join_probe(&acc, &index, &p2, &[0], true);
        assert_eq!(j2, hash_join_on(&acc, &p2, &[(s, 0)]));
        assert_eq!(j1.num_rows(), 2);
        assert_eq!(j2.num_rows(), 3);
    }

    #[test]
    fn join_decomposition_identity() {
        // T1 ⋈ T2 = (T1 ⋉ T2) ⋈ T2 on the join key — the §5.2 identity ExtVP
        // relies on (restricted form; the full property test lives in the
        // integration suite).
        let t1 = follows().with_schema(Schema::new(["a", "j"]));
        let t2 = likes().with_schema(Schema::new(["j", "b"]));
        let direct = natural_join(&t1, &t2);
        let reduced = semi_join_on(&t1, 1, &t2, 0);
        let via_semi = natural_join(&reduced, &t2);
        assert_eq!(direct.num_rows(), via_semi.num_rows());
    }
}
