//! SIMD-friendly chunked comparison kernels over `u32` dictionary-id
//! columns.
//!
//! Every kernel walks a column in 64-element chunks and emits one `u64`
//! bitmap word per chunk. The inner loops are branch-free over fixed-size
//! `chunks_exact` slices, exactly the shape LLVM auto-vectorizes into
//! `pcmpeqd`-style lanes at `opt-level ≥ 2` — no intrinsics, no `unsafe`,
//! portable to any target. Selections, repeated-variable equality checks
//! and the morsel pipeline's filter→probe fusion all sit on these kernels,
//! replacing the per-row `filter_map` scans the operators used before.
//!
//! The convention throughout: bit `i` of word `w` corresponds to row
//! `w * 64 + i` (LSB-first), matching [`Bitmap`]'s layout, and bits beyond
//! the column length stay zero.

use crate::bitmap::Bitmap;

/// Rows per bitmap word — the kernel chunk width.
pub const WORD_ROWS: usize = 64;

/// One 64-lane equality chunk: compares `chunk` (exactly 64 values)
/// against `value` and packs the results into a word.
#[inline]
fn eq_const_word(chunk: &[u32], value: u32) -> u64 {
    let mut word = 0u64;
    for (i, &v) in chunk.iter().enumerate() {
        word |= ((v == value) as u64) << i;
    }
    word
}

/// One 64-lane column-equality chunk: `a[i] == b[i]` packed into a word.
#[inline]
fn eq_cols_word(a: &[u32], b: &[u32]) -> u64 {
    let mut word = 0u64;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        word |= ((x == y) as u64) << i;
    }
    word
}

/// `col[i] == value` as a bitmap — the vectorized core of `select_eq`.
pub fn eq_const(col: &[u32], value: u32) -> Bitmap {
    let mut bm = Bitmap::new(col.len());
    let words = bm.words_mut();
    let mut chunks = col.chunks_exact(WORD_ROWS);
    let mut wi = 0;
    for chunk in &mut chunks {
        words[wi] = eq_const_word(chunk, value);
        wi += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        words[wi] = eq_const_word(rem, value);
    }
    bm
}

/// Narrows `bm` to rows where additionally `col[i] == value`
/// (`bm &= eq_const(col, value)` without allocating the intermediate).
pub fn and_eq_const(bm: &mut Bitmap, col: &[u32], value: u32) {
    assert_eq!(bm.len(), col.len(), "bitmap/column length mismatch");
    let words = bm.words_mut();
    let mut chunks = col.chunks_exact(WORD_ROWS);
    let mut wi = 0;
    for chunk in &mut chunks {
        words[wi] &= eq_const_word(chunk, value);
        wi += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        words[wi] &= eq_const_word(rem, value);
    }
}

/// Narrows `bm` to rows where `a[i] == b[i]` — the repeated-variable
/// selection of paper Alg. 2 (`?x p ?x`), vectorized.
pub fn and_eq_cols(bm: &mut Bitmap, a: &[u32], b: &[u32]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(bm.len(), a.len(), "bitmap/column length mismatch");
    let words = bm.words_mut();
    let mut pa = a.chunks_exact(WORD_ROWS);
    let pb = b.chunks_exact(WORD_ROWS);
    let mut wi = 0;
    for (ca, cb) in (&mut pa).zip(pb) {
        words[wi] &= eq_cols_word(ca, cb);
        wi += 1;
    }
    let ra = pa.remainder();
    if !ra.is_empty() {
        let rb = &b[b.len() - ra.len()..];
        words[wi] &= eq_cols_word(ra, rb);
    }
}

/// Narrows `bm` to rows where `keep(col[i])` holds, visiting only the
/// rows already set — the sink for sideways semi-join filters: by the
/// time the Bloom probe runs, the cheap vectorized predicates have
/// already cleared most bits, so the per-row hash only touches survivors.
pub fn retain_rows<F: Fn(u32) -> bool>(bm: &mut Bitmap, col: &[u32], keep: F) {
    assert_eq!(bm.len(), col.len(), "bitmap/column length mismatch");
    let cleared: Vec<usize> = bm.iter_ones().filter(|&i| !keep(col[i])).collect();
    for i in cleared {
        bm.clear(i);
    }
}

/// Gathers `src[i]` for every set bit of `bm`, in row order — the
/// late-materialization sink: columns are only touched here, once, after
/// all selections have been folded into the bitmap.
pub fn gather_column(src: &[u32], bm: &Bitmap) -> Vec<u32> {
    assert_eq!(src.len(), bm.len(), "bitmap/column length mismatch");
    let mut out = Vec::with_capacity(bm.count_ones());
    for i in bm.iter_ones() {
        out.push(src[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_eq_const(col: &[u32], value: u32) -> Vec<usize> {
        col.iter()
            .enumerate()
            .filter_map(|(i, &v)| (v == value).then_some(i))
            .collect()
    }

    fn lcg_column(n: usize, card: u32, mut state: u64) -> Vec<u32> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as u32) % card
            })
            .collect()
    }

    #[test]
    fn eq_const_matches_scalar_reference() {
        for n in [0, 1, 63, 64, 65, 128, 1000] {
            let col = lcg_column(n, 7, n as u64 + 1);
            let bm = eq_const(&col, 3);
            assert_eq!(
                bm.iter_ones().collect::<Vec<_>>(),
                reference_eq_const(&col, 3),
                "n={n}"
            );
        }
    }

    #[test]
    fn and_eq_const_intersects() {
        let a = lcg_column(500, 4, 9);
        let b = lcg_column(500, 4, 10);
        let mut bm = eq_const(&a, 1);
        and_eq_const(&mut bm, &b, 2);
        let expect: Vec<usize> = (0..500).filter(|&i| a[i] == 1 && b[i] == 2).collect();
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn and_eq_cols_matches_rowwise() {
        for n in [65, 200, 640] {
            let a = lcg_column(n, 3, 11);
            let b = lcg_column(n, 3, 12);
            let mut bm = Bitmap::full(n);
            and_eq_cols(&mut bm, &a, &b);
            let expect: Vec<usize> = (0..n).filter(|&i| a[i] == b[i]).collect();
            assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expect, "n={n}");
        }
    }

    #[test]
    fn full_bitmap_trailing_bits_zero() {
        let bm = Bitmap::full(70);
        assert_eq!(bm.count_ones(), 70);
        let mut bm = Bitmap::full(70);
        and_eq_const(&mut bm, &vec![5u32; 70], 5);
        assert_eq!(bm.count_ones(), 70);
    }

    #[test]
    fn gather_column_picks_set_rows() {
        let src: Vec<u32> = (0..130).collect();
        let bm = Bitmap::from_indices(130, &[0, 64, 129]);
        assert_eq!(gather_column(&src, &bm), vec![0, 64, 129]);
    }
}
