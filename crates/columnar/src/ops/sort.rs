//! Sorting and pagination (ORDER BY / LIMIT / OFFSET).

use std::cmp::Ordering;

use crate::metrics::SpanTimer;
use crate::table::Table;
use crate::{metric_counter, metric_histogram};

/// Stable sort by a caller-supplied row comparator. The comparator receives
/// two row indices of `table`; callers decode dictionary ids to terms to
/// implement SPARQL value ordering.
pub fn sort_by<F: FnMut(usize, usize) -> Ordering>(table: &Table, mut cmp: F) -> Table {
    let _span = SpanTimer::start(metric_histogram!("columnar.sort.wall_micros"));
    metric_counter!("columnar.sort.calls").inc();
    metric_counter!("columnar.sort.rows").add(table.num_rows() as u64);
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    indices.sort_by(|&a, &b| cmp(a, b));
    table.gather(&indices)
}

/// OFFSET/LIMIT: skips `offset` rows then keeps at most `limit` rows.
pub fn slice(table: &Table, offset: usize, limit: Option<usize>) -> Table {
    let start = offset.min(table.num_rows());
    let end = match limit {
        Some(l) => (start + l).min(table.num_rows()),
        None => table.num_rows(),
    };
    let indices: Vec<usize> = (start..end).collect();
    table.gather(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Table {
        Table::from_rows(Schema::new(["k", "v"]), &[[3, 0], [1, 1], [2, 2], [1, 3]])
    }

    #[test]
    fn sort_is_stable() {
        let t = sample();
        let s = sort_by(&t, |a, b| t.value(a, 0).cmp(&t.value(b, 0)));
        assert_eq!(s.column(0), &[1, 1, 2, 3]);
        // Equal keys keep input order: v=1 before v=3.
        assert_eq!(s.column(1), &[1, 3, 2, 0]);
    }

    #[test]
    fn sort_descending() {
        let t = sample();
        let s = sort_by(&t, |a, b| t.value(b, 0).cmp(&t.value(a, 0)));
        assert_eq!(s.column(0), &[3, 2, 1, 1]);
    }

    #[test]
    fn slice_bounds() {
        let t = sample();
        assert_eq!(slice(&t, 0, None).num_rows(), 4);
        assert_eq!(slice(&t, 1, Some(2)).column(1), &[1, 2]);
        assert_eq!(slice(&t, 3, Some(10)).num_rows(), 1);
        assert_eq!(slice(&t, 10, Some(1)).num_rows(), 0);
        assert_eq!(slice(&t, 0, Some(0)).num_rows(), 0);
    }
}
