//! Sorting and pagination (ORDER BY / LIMIT / OFFSET).

use std::cmp::Ordering;

use crate::metrics::SpanTimer;
use crate::table::Table;
use crate::{metric_counter, metric_histogram};

/// Stable sort by a caller-supplied row comparator. The comparator receives
/// two row indices of `table`; callers decode dictionary ids to terms to
/// implement SPARQL value ordering.
pub fn sort_by<F: FnMut(usize, usize) -> Ordering>(table: &Table, mut cmp: F) -> Table {
    let _span = SpanTimer::start(metric_histogram!("columnar.sort.wall_micros"));
    metric_counter!("columnar.sort.calls").inc();
    metric_counter!("columnar.sort.rows").add(table.num_rows() as u64);
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    indices.sort_by(|&a, &b| cmp(a, b));
    table.gather(&indices)
}

/// Stable LSD radix sort by one caller-supplied `u32` key per row
/// (`keys[i]` orders row `i`; ascending).
///
/// Four 8-bit counting passes over a row-index permutation; passes whose
/// byte is constant across all keys are skipped, so dictionary ids (which
/// rarely exceed 2^16 in our stores) typically cost two passes. This is the
/// fast path for single-key `ORDER BY` over u32 columns — O(n) instead of
/// the comparison sort's O(n log n) — and it shares the
/// `columnar.sort.wall_micros` histogram with [`sort_by`] so the speedup is
/// visible per call. Callers needing descending order pass bitwise-negated
/// keys (`!k`), which preserves stability; composite keys use
/// [`sort_by_keys_radix`].
pub fn sort_by_key_radix(table: &Table, keys: &[u32]) -> Table {
    assert_eq!(
        keys.len(),
        table.num_rows(),
        "radix sort needs exactly one key per row"
    );
    let _span = SpanTimer::start(metric_histogram!("columnar.sort.wall_micros"));
    metric_counter!("columnar.sort.calls").inc();
    metric_counter!("columnar.sort.radix_calls").inc();
    metric_counter!("columnar.sort.rows").add(table.num_rows() as u64);
    let n = keys.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut scratch: Vec<usize> = vec![0; n];
    radix_passes(keys, &mut indices, &mut scratch);
    table.gather(&indices)
}

/// Stable LSD radix sort by a composite key: `keys[0]` is the primary sort
/// key, `keys[1]` the secondary, and so on (each `keys[k][i]` orders row
/// `i`, ascending).
///
/// Runs the four-pass byte sort of [`sort_by_key_radix`] once per key,
/// least-significant key first — stability makes earlier (more significant)
/// keys win ties, which is exactly SPARQL's multi-condition `ORDER BY`
/// semantics. Cost is O(n · keys) with the same uniform-byte pass skipping,
/// so a two-key sort over small dictionary ids typically costs four
/// counting passes total. Descending conditions pass negated keys, as in
/// the single-key variant.
pub fn sort_by_keys_radix(table: &Table, keys: &[Vec<u32>]) -> Table {
    assert!(
        !keys.is_empty(),
        "composite radix sort needs at least one key"
    );
    for key in keys {
        assert_eq!(
            key.len(),
            table.num_rows(),
            "radix sort needs exactly one key per row"
        );
    }
    let _span = SpanTimer::start(metric_histogram!("columnar.sort.wall_micros"));
    metric_counter!("columnar.sort.calls").inc();
    metric_counter!("columnar.sort.radix_calls").inc();
    metric_counter!("columnar.sort.rows").add(table.num_rows() as u64);
    let n = table.num_rows();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut scratch: Vec<usize> = vec![0; n];
    for key in keys.iter().rev() {
        radix_passes(key, &mut indices, &mut scratch);
    }
    table.gather(&indices)
}

/// Four stable 8-bit counting passes of `keys` applied to the row
/// permutation in `indices` (`scratch` is same-length workspace).
fn radix_passes(keys: &[u32], indices: &mut Vec<usize>, scratch: &mut Vec<usize>) {
    let n = indices.len();
    for pass in 0..4 {
        let shift = pass * 8;
        let byte = |i: usize| ((keys[i] >> shift) & 0xFF) as usize;
        let mut counts = [0usize; 256];
        for &i in indices.iter() {
            counts[byte(i)] += 1;
        }
        // A byte uniform across all keys cannot change the order.
        if counts.contains(&n) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for b in 0..256 {
            offsets[b] = acc;
            acc += counts[b];
        }
        for &i in indices.iter() {
            let b = byte(i);
            scratch[offsets[b]] = i;
            offsets[b] += 1;
        }
        std::mem::swap(indices, scratch);
    }
}

/// OFFSET/LIMIT: skips `offset` rows then keeps at most `limit` rows.
pub fn slice(table: &Table, offset: usize, limit: Option<usize>) -> Table {
    let start = offset.min(table.num_rows());
    let end = match limit {
        Some(l) => (start + l).min(table.num_rows()),
        None => table.num_rows(),
    };
    let indices: Vec<usize> = (start..end).collect();
    table.gather(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Table {
        Table::from_rows(Schema::new(["k", "v"]), &[[3, 0], [1, 1], [2, 2], [1, 3]])
    }

    #[test]
    fn sort_is_stable() {
        let t = sample();
        let s = sort_by(&t, |a, b| t.value(a, 0).cmp(&t.value(b, 0)));
        assert_eq!(s.column(0), &[1, 1, 2, 3]);
        // Equal keys keep input order: v=1 before v=3.
        assert_eq!(s.column(1), &[1, 3, 2, 0]);
    }

    #[test]
    fn sort_descending() {
        let t = sample();
        let s = sort_by(&t, |a, b| t.value(b, 0).cmp(&t.value(a, 0)));
        assert_eq!(s.column(0), &[3, 2, 1, 1]);
    }

    #[test]
    fn radix_matches_comparison_sort_and_is_stable() {
        // Deterministic pseudo-random keys with duplicates.
        let mut state = 0x2545F4914F6CDD1Du64;
        let rows: Vec<[u32; 2]> = (0..2000)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                [(state >> 33) as u32 % 50, i as u32]
            })
            .collect();
        let t = Table::from_rows(Schema::new(["k", "v"]), &rows);
        let keys: Vec<u32> = t.column(0).to_vec();
        let radix = sort_by_key_radix(&t, &keys);
        let cmp = sort_by(&t, |a, b| t.value(a, 0).cmp(&t.value(b, 0)));
        // Stable sorts over the same keys agree exactly (including tie order).
        assert_eq!(radix, cmp);
    }

    #[test]
    fn radix_handles_full_width_keys() {
        // Keys exercising all four byte passes (none uniform).
        let rows: Vec<[u32; 1]> = [0xFFFF_FFFF, 0, 0x8000_0001, 0x0102_0304, 0x0102_0004, 1]
            .iter()
            .map(|&k| [k])
            .collect();
        let t = Table::from_rows(Schema::new(["k"]), &rows);
        let keys: Vec<u32> = t.column(0).to_vec();
        let s = sort_by_key_radix(&t, &keys);
        assert_eq!(
            s.column(0),
            &[0, 1, 0x0102_0004, 0x0102_0304, 0x8000_0001, 0xFFFF_FFFF]
        );
    }

    #[test]
    fn radix_descending_via_negated_keys() {
        let t = sample();
        let keys: Vec<u32> = t.column(0).iter().map(|&k| !k).collect();
        let s = sort_by_key_radix(&t, &keys);
        assert_eq!(s.column(0), &[3, 2, 1, 1]);
        // Stability under negation: equal keys keep input order.
        assert_eq!(s.column(1), &[0, 2, 1, 3]);
    }

    #[test]
    fn multi_key_radix_matches_comparison_sort() {
        // Two keys with plenty of primary-key ties plus a payload column to
        // observe stability on full ties.
        let mut state = 0x9E3779B97F4A7C15u64;
        let rows: Vec<[u32; 3]> = (0..3000)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                [
                    (state >> 33) as u32 % 7,
                    (state >> 11) as u32 % 11,
                    i as u32,
                ]
            })
            .collect();
        let t = Table::from_rows(Schema::new(["a", "b", "v"]), &rows);
        let keys = vec![t.column(0).to_vec(), t.column(1).to_vec()];
        let radix = sort_by_keys_radix(&t, &keys);
        let cmp = sort_by(&t, |x, y| {
            t.value(x, 0)
                .cmp(&t.value(y, 0))
                .then(t.value(x, 1).cmp(&t.value(y, 1)))
        });
        assert_eq!(radix, cmp);
    }

    #[test]
    fn multi_key_radix_mixed_directions() {
        // Ascending on column 0, descending (negated keys) on column 1.
        let t = Table::from_rows(
            Schema::new(["a", "b"]),
            &[[1, 5], [0, 2], [1, 9], [0, 7], [1, 5]],
        );
        let keys = vec![
            t.column(0).to_vec(),
            t.column(1).iter().map(|&k| !k).collect(),
        ];
        let s = sort_by_keys_radix(&t, &keys);
        assert_eq!(s.column(0), &[0, 0, 1, 1, 1]);
        assert_eq!(s.column(1), &[7, 2, 9, 5, 5]);
    }

    #[test]
    fn multi_key_radix_single_key_matches_single_key_radix() {
        let t = sample();
        let keys: Vec<u32> = t.column(0).to_vec();
        assert_eq!(
            sort_by_keys_radix(&t, std::slice::from_ref(&keys)),
            sort_by_key_radix(&t, &keys)
        );
    }

    #[test]
    fn radix_empty_table() {
        let t = Table::from_rows(Schema::new(["k"]), &Vec::<[u32; 1]>::new());
        assert_eq!(sort_by_key_radix(&t, &[]).num_rows(), 0);
    }

    #[test]
    fn slice_bounds() {
        let t = sample();
        assert_eq!(slice(&t, 0, None).num_rows(), 4);
        assert_eq!(slice(&t, 1, Some(2)).column(1), &[1, 2]);
        assert_eq!(slice(&t, 3, Some(10)).num_rows(), 1);
        assert_eq!(slice(&t, 10, Some(1)).num_rows(), 0);
        assert_eq!(slice(&t, 0, Some(0)).num_rows(), 0);
    }
}
