//! Relational operators over [`Table`](crate::Table).
//!
//! The operator set is exactly what the SPARQL compiler in `s2rdf-core`
//! needs: selections/projections for triple patterns (paper Alg. 2), hash
//! joins for BGP evaluation (Alg. 3/4), semi joins for ExtVP construction
//! (§5.2), left outer join for OPTIONAL, union/distinct/sort/slice for the
//! remaining SPARQL 1.0 solution modifiers (§6.1).

mod basic;
mod join;
pub mod kernels;
mod set;
mod sort;

pub use basic::{filter, project, project_rename, select_eq};
pub(crate) use join::join_schema;
pub use join::{
    build_join_index, hash_join_on, hash_join_probe, left_outer_join, natural_join, semi_join_on,
    BuildIndex,
};
pub use set::{distinct, union};
pub use sort::{slice, sort_by, sort_by_key_radix, sort_by_keys_radix};
