//! Persistent table store: the stand-in for Parquet files on HDFS.
//!
//! Tables are serialized one file per table into a store directory, in a
//! chunked columnar format (v3) with per-chunk lightweight compression,
//! zone maps and optional per-column Bloom filters — standing in for
//! Parquet's row groups + column statistics, see DESIGN.md and
//! [`crate::chunk`]. A `manifest.tsv` maps logical table names (which
//! contain characters like `|` that the ExtVP naming scheme uses) to
//! on-disk file names.
//!
//! # Format versions
//!
//! * **v3** (current): `magic | version | header | header CRC-32 | chunk
//!   bodies | file CRC-32`. The header carries the schema plus per-chunk
//!   zone maps (min/max/distinct), encodings, body lengths and per-chunk
//!   CRCs, so [`TableStore::load_compressed`] can plan chunk skipping
//!   without decoding anything; the trailing whole-file CRC still catches
//!   every bit flip or truncation up front.
//! * **v2**: one varint/RLE stream per column with a whole-file CRC-32
//!   footer. Still readable (and writable via [`serialize_table_v2`] for
//!   compatibility fixtures); `checkpoint` transparently rewrites v2
//!   tables as v3.
//! * **v1**: v2 without the footer. Readable only.
//!
//! # Durability
//!
//! Any bit flip or truncation of a stored v2/v3 table surfaces as
//! [`ColumnarError::ChecksumMismatch`] instead of silently decoding to wrong
//! data (or worse, decoding "successfully"). v3 per-chunk CRCs additionally
//! localize the damage: [`TableStore::verify_chunks`] reports exactly which
//! chunks of which columns are corrupt, so repair can quarantine at chunk
//! granularity instead of whole-table.
//!
//! All writes — table files and the manifest — go through a
//! temp-file-then-rename sequence, so a crash mid-save leaves either the old
//! or the new content, never a torn file. Table files are written before the
//! manifest that references them; a crash between the two leaves an
//! unreferenced `t*.col` file, which [`TableStore::open`] detects and
//! reports via [`TableStore::orphans`]. Stale `*.tmp` files are cleaned up
//! on open.
//!
//! A [`FaultInjector`] can be attached to exercise all of those paths
//! deterministically; see [`crate::fault`].

use std::fmt::Write as _;
use std::fs;
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use rustc_hash::FxHashMap;

use crate::chunk::{self, Bloom, ChunkMeta, ColMeta, CompressedTable, WriteOptions};
use crate::crc32::crc32;
use crate::error::ColumnarError;
use crate::fault::FaultInjector;
use crate::schema::Schema;
use crate::table::Table;
use crate::{metric_counter, metric_gauge};

const MAGIC: &[u8; 4] = b"S2CT";
/// Current format version: chunked columns with zone maps (see
/// [`crate::chunk`]), per-chunk CRCs, a header CRC and a whole-file footer.
const VERSION_V3: u8 = 3;
/// Monolithic per-column varint/RLE streams with a CRC-32 footer.
const VERSION: u8 = 2;
/// Legacy format without a checksum footer; still readable.
const VERSION_V1: u8 = 1;
/// Footer: little-endian CRC-32 of all preceding bytes.
const FOOTER_LEN: usize = 4;
const ENC_PLAIN: u8 = 0;
const ENC_RLE: u8 = 1;

/// Upper bound on `nrows * ncols` accepted from untrusted bytes (2^28 cells
/// = 1 GiB of u32 values). Prevents a corrupted header from driving huge
/// allocations before the row-count cross-checks can fire.
const MAX_CELLS: u64 = 1 << 28;
/// Cap on speculative `Vec::with_capacity` hints while decoding, so a
/// corrupt row count cannot pre-allocate unbounded memory.
const MAX_CAPACITY_HINT: usize = 1 << 22;

pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, ColumnarError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| ColumnarError::CorruptFile("truncated varint".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(ColumnarError::CorruptFile("varint overflow".into()));
        }
    }
}

fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Encodes one column, picking the smaller of plain-varint and RLE.
fn encode_column(col: &[u32], out: &mut Vec<u8>) {
    let mut plain_size = 0usize;
    let mut rle_size = 0usize;
    let mut i = 0;
    while i < col.len() {
        let mut run = 1;
        while i + run < col.len() && col[i + run] == col[i] {
            run += 1;
        }
        rle_size += varint_len(col[i] as u64) + varint_len(run as u64);
        i += run;
    }
    for &v in col {
        plain_size += varint_len(v as u64);
    }

    if rle_size < plain_size {
        out.push(ENC_RLE);
        let mut body = Vec::with_capacity(rle_size);
        let mut i = 0;
        while i < col.len() {
            let mut run = 1;
            while i + run < col.len() && col[i + run] == col[i] {
                run += 1;
            }
            write_varint(&mut body, col[i] as u64);
            write_varint(&mut body, run as u64);
            i += run;
        }
        write_varint(out, body.len() as u64);
        out.extend_from_slice(&body);
    } else {
        out.push(ENC_PLAIN);
        let mut body = Vec::with_capacity(plain_size);
        for &v in col {
            write_varint(&mut body, v as u64);
        }
        write_varint(out, body.len() as u64);
        out.extend_from_slice(&body);
    }
}

fn decode_column(data: &[u8], pos: &mut usize, nrows: usize) -> Result<Vec<u32>, ColumnarError> {
    let tag = *data
        .get(*pos)
        .ok_or_else(|| ColumnarError::CorruptFile("missing column tag".into()))?;
    *pos += 1;
    let body_len = read_varint(data, pos)? as usize;
    let end = pos
        .checked_add(body_len)
        .ok_or_else(|| ColumnarError::CorruptFile("column body length overflow".into()))?;
    if end > data.len() {
        return Err(ColumnarError::CorruptFile("truncated column body".into()));
    }
    let mut col = Vec::with_capacity(nrows.min(MAX_CAPACITY_HINT));
    match tag {
        ENC_PLAIN => {
            while *pos < end {
                col.push(read_varint(data, pos)? as u32);
            }
        }
        ENC_RLE => {
            while *pos < end {
                let value = read_varint(data, pos)? as u32;
                let run = read_varint(data, pos)?;
                // Bound before extending: a corrupt run length must not
                // drive an allocation past the declared row count.
                if run > nrows as u64 - col.len() as u64 {
                    return Err(ColumnarError::CorruptFile(format!(
                        "RLE run of {run} overflows {nrows}-row column"
                    )));
                }
                col.extend(std::iter::repeat_n(value, run as usize));
            }
        }
        other => {
            return Err(ColumnarError::CorruptFile(format!(
                "unknown column encoding {other}"
            )))
        }
    }
    if col.len() != nrows {
        return Err(ColumnarError::CorruptFile(format!(
            "column decoded to {} rows, expected {nrows}",
            col.len()
        )));
    }
    Ok(col)
}

/// Serializes a table into the current columnar file format (v3, chunked
/// with zone maps) using default write options.
pub fn serialize_table(table: &Table) -> Vec<u8> {
    serialize_table_opts(table, &WriteOptions::default())
}

/// Serializes a table as format v3 with explicit chunking/Bloom options.
pub fn serialize_table_opts(table: &Table, opts: &WriteOptions) -> Vec<u8> {
    serialize_compressed(&CompressedTable::from_table(table, opts))
}

/// Serializes an already-encoded [`CompressedTable`] (v3 layout: header,
/// header CRC, chunk bodies, whole-file CRC footer).
fn serialize_compressed(ct: &CompressedTable) -> Vec<u8> {
    let mut out = Vec::with_capacity(ct.body.len() + 64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION_V3);
    write_varint(&mut out, ct.schema.len() as u64);
    for name in ct.schema.names() {
        write_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
    write_varint(&mut out, ct.nrows as u64);
    write_varint(&mut out, ct.chunk_rows as u64);
    // Chunk counts and per-chunk row counts are derived from
    // `nrows`/`chunk_rows` at parse time, so only the zone maps, encodings,
    // body lengths and CRCs are written per chunk.
    for col in &ct.cols {
        match &col.bloom {
            Some(bloom) => {
                out.push(1);
                bloom.write(&mut out);
            }
            None => out.push(0),
        }
        for m in &col.chunks {
            out.push(m.enc);
            write_varint(&mut out, m.min as u64);
            write_varint(&mut out, (m.max - m.min) as u64);
            out.push(m.distinct as u8);
            write_varint(&mut out, m.len as u64);
            out.extend_from_slice(&m.crc.to_le_bytes());
        }
    }
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(&ct.body);
    let footer = crc32(&out);
    out.extend_from_slice(&footer.to_le_bytes());
    out
}

/// Serializes a table into the legacy v2 format (one varint/RLE stream per
/// column, whole-file CRC footer). Kept for backward-compatibility
/// fixtures and the v2-vs-v3 size comparison in `bench_pr10`.
pub fn serialize_table_v2(table: &Table) -> Vec<u8> {
    let mut out = Vec::with_capacity(table.byte_size() / 2 + 64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    write_varint(&mut out, table.schema().len() as u64);
    for name in table.schema().names() {
        write_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
    write_varint(&mut out, table.num_rows() as u64);
    for col in table.columns() {
        encode_column(col, &mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verifies the whole-file CRC-32 footer shared by v2 and v3 images.
fn check_footer(data: &[u8]) -> Result<usize, ColumnarError> {
    if data.len() < 5 + FOOTER_LEN {
        return Err(ColumnarError::CorruptFile(
            "truncated checksum footer".into(),
        ));
    }
    let body_end = data.len() - FOOTER_LEN;
    let expected = u32::from_le_bytes(data[body_end..].try_into().expect("4-byte footer"));
    let actual = crc32(&data[..body_end]);
    if actual != expected {
        metric_counter!("columnar.io.checksum_failures").inc();
        return Err(ColumnarError::ChecksumMismatch { expected, actual });
    }
    metric_counter!("columnar.io.checksum_verifies").inc();
    Ok(body_end)
}

/// Parses a v3 image into its compressed form without decoding any chunk.
/// Verifies the header CRC (the zone maps and chunk directory must be
/// trustworthy before any pruning decision); the whole-file footer is the
/// caller's concern — [`TableStore::load_compressed`] checks it on every
/// physical read, while chunk-granular diagnostics
/// ([`TableStore::verify_chunks`]) deliberately skip it to localize
/// damage.
///
/// Total over arbitrary bytes: corrupt input of any shape produces an
/// `Err`, never a panic or unbounded allocation.
fn parse_compressed_v3(data: &[u8]) -> Result<CompressedTable, ColumnarError> {
    debug_assert!(data.len() >= 5 && &data[..4] == MAGIC && data[4] == VERSION_V3);
    let mut pos = 5usize;
    let ncols = read_varint(data, &mut pos)? as usize;
    if ncols > data.len() {
        return Err(ColumnarError::CorruptFile(format!(
            "implausible column count {ncols} for {}-byte file",
            data.len()
        )));
    }
    let mut names = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let len = read_varint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .ok_or_else(|| ColumnarError::CorruptFile("column name length overflow".into()))?;
        let bytes = data
            .get(pos..end)
            .ok_or_else(|| ColumnarError::CorruptFile("truncated column name".into()))?;
        names.push(
            std::str::from_utf8(bytes)
                .map_err(|_| ColumnarError::CorruptFile("non-utf8 column name".into()))?
                .to_string(),
        );
        pos = end;
    }
    // `Schema::new` treats duplicate names as a caller bug (panic); from
    // untrusted bytes they are corruption.
    let unique: std::collections::HashSet<&str> = names.iter().map(String::as_str).collect();
    if unique.len() != names.len() {
        return Err(ColumnarError::CorruptFile("duplicate column name".into()));
    }
    let nrows = read_varint(data, &mut pos)? as usize;
    let cells = (nrows as u64)
        .checked_mul(ncols.max(1) as u64)
        .ok_or_else(|| ColumnarError::CorruptFile("table dimensions overflow".into()))?;
    if cells > MAX_CELLS {
        return Err(ColumnarError::CorruptFile(format!(
            "table dimensions {nrows}x{ncols} exceed cell limit"
        )));
    }
    let chunk_rows = read_varint(data, &mut pos)? as usize;
    if chunk_rows == 0 || chunk_rows as u64 > MAX_CELLS {
        return Err(ColumnarError::CorruptFile(format!(
            "implausible chunk size {chunk_rows}"
        )));
    }
    let nchunks = if nrows == 0 {
        0
    } else {
        nrows.div_ceil(chunk_rows)
    };
    let mut cols = Vec::with_capacity(ncols.min(MAX_CAPACITY_HINT));
    let mut offset = 0usize;
    for _ in 0..ncols {
        let has_bloom = *data
            .get(pos)
            .ok_or_else(|| ColumnarError::CorruptFile("truncated Bloom flag".into()))?;
        pos += 1;
        let bloom = match has_bloom {
            0 => None,
            1 => Some(Bloom::read(data, &mut pos)?),
            other => {
                return Err(ColumnarError::CorruptFile(format!(
                    "bad Bloom flag {other}"
                )))
            }
        };
        let mut chunks = Vec::with_capacity(nchunks.min(MAX_CAPACITY_HINT));
        for k in 0..nchunks {
            let enc = *data
                .get(pos)
                .ok_or_else(|| ColumnarError::CorruptFile("truncated chunk encoding".into()))?;
            pos += 1;
            if enc > chunk::ENC_CHUNK_DELTA {
                return Err(ColumnarError::CorruptFile(format!(
                    "unknown chunk encoding {enc}"
                )));
            }
            let min = read_varint(data, &mut pos)?;
            let span = read_varint(data, &mut pos)?;
            let max = min
                .checked_add(span)
                .filter(|&m| m <= u32::MAX as u64)
                .ok_or_else(|| ColumnarError::CorruptFile("zone map exceeds u32".into()))?;
            let distinct = *data
                .get(pos)
                .ok_or_else(|| ColumnarError::CorruptFile("truncated distinct flag".into()))?;
            pos += 1;
            if distinct > 1 {
                return Err(ColumnarError::CorruptFile("bad distinct flag".into()));
            }
            let len = read_varint(data, &mut pos)? as usize;
            let crc_bytes = data
                .get(pos..pos + 4)
                .ok_or_else(|| ColumnarError::CorruptFile("truncated chunk CRC".into()))?;
            pos += 4;
            let rows = if k + 1 == nchunks {
                nrows - (nchunks - 1) * chunk_rows
            } else {
                chunk_rows
            };
            chunks.push(ChunkMeta {
                rows,
                min: min as u32,
                max: max as u32,
                distinct: distinct == 1,
                enc,
                offset,
                len,
                crc: u32::from_le_bytes(crc_bytes.try_into().expect("4-byte CRC")),
            });
            offset = offset
                .checked_add(len)
                .ok_or_else(|| ColumnarError::CorruptFile("chunk offsets overflow".into()))?;
        }
        cols.push(ColMeta { chunks, bloom });
    }
    let header_end = pos;
    let declared = u32::from_le_bytes(
        data.get(header_end..header_end + 4)
            .ok_or_else(|| ColumnarError::CorruptFile("truncated header CRC".into()))?
            .try_into()
            .expect("4-byte CRC"),
    );
    let actual = crc32(&data[..header_end]);
    if actual != declared {
        metric_counter!("columnar.io.checksum_failures").inc();
        return Err(ColumnarError::ChecksumMismatch {
            expected: declared,
            actual,
        });
    }
    let bodies_start = header_end + 4;
    // Exact-length check: anything shorter is torn, anything longer is
    // appended garbage (and would also defeat the footer).
    if data.len() != bodies_start + offset + FOOTER_LEN {
        return Err(ColumnarError::CorruptFile(format!(
            "file length {} does not match declared chunk bodies",
            data.len()
        )));
    }
    Ok(CompressedTable {
        schema: Schema::new(names),
        nrows,
        chunk_rows,
        cols,
        body: data[bodies_start..bodies_start + offset].to_vec(),
        file_bytes: data.len(),
        materialized: std::sync::OnceLock::new(),
    })
}

/// Parses any supported format into the compressed representation: v3
/// stays compressed (chunks decode on demand); v1/v2 decode fully and are
/// wrapped via [`CompressedTable::from_plain`]. `verify_footer` controls
/// whether the v3 whole-file CRC is checked (physical reads do; chunk
/// diagnostics do not).
fn parse_compressed(data: &[u8], verify_footer: bool) -> Result<CompressedTable, ColumnarError> {
    if data.len() >= 5 && &data[..4] == MAGIC && data[4] == VERSION_V3 {
        if verify_footer {
            check_footer(data)?;
        }
        parse_compressed_v3(data)
    } else {
        let table = Arc::new(deserialize_table(data)?);
        Ok(CompressedTable::from_plain(table, data.len()))
    }
}

/// Deserializes a table from the columnar file format.
///
/// Accepts the current v3 chunked format, v2, and legacy v1 files without
/// a footer. v2/v3 are checksum-verified — the whole-file footer is
/// checked *first*, so any single corrupt byte yields
/// [`ColumnarError::ChecksumMismatch`] regardless of where it landed.
/// Designed to be total over arbitrary input bytes: corrupt data of any
/// shape produces an `Err`, never a panic or unbounded allocation.
pub fn deserialize_table(data: &[u8]) -> Result<Table, ColumnarError> {
    if data.len() < 5 || &data[..4] != MAGIC {
        return Err(ColumnarError::CorruptFile("bad magic".into()));
    }
    let body_end = match data[4] {
        VERSION_V1 => data.len(),
        VERSION => check_footer(data)?,
        VERSION_V3 => {
            check_footer(data)?;
            let ct = parse_compressed_v3(data)?;
            let table = ct.materialize()?;
            drop(ct);
            return Ok(Arc::try_unwrap(table).unwrap_or_else(|t| (*t).clone()));
        }
        other => {
            return Err(ColumnarError::CorruptFile(format!(
                "unsupported version {other}"
            )))
        }
    };
    let data = &data[..body_end];
    let mut pos = 5;
    let ncols = read_varint(data, &mut pos)? as usize;
    // Each column needs at least a 1-byte name length in the header, so a
    // column count beyond the file size is structurally impossible.
    if ncols > data.len() {
        return Err(ColumnarError::CorruptFile(format!(
            "implausible column count {ncols} for {}-byte file",
            data.len()
        )));
    }
    let mut names = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let len = read_varint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .ok_or_else(|| ColumnarError::CorruptFile("column name length overflow".into()))?;
        let bytes = data
            .get(pos..end)
            .ok_or_else(|| ColumnarError::CorruptFile("truncated column name".into()))?;
        names.push(
            std::str::from_utf8(bytes)
                .map_err(|_| ColumnarError::CorruptFile("non-utf8 column name".into()))?
                .to_string(),
        );
        pos = end;
    }
    let nrows = read_varint(data, &mut pos)? as usize;
    let cells = (nrows as u64)
        .checked_mul(ncols.max(1) as u64)
        .ok_or_else(|| ColumnarError::CorruptFile("table dimensions overflow".into()))?;
    if cells > MAX_CELLS {
        return Err(ColumnarError::CorruptFile(format!(
            "table dimensions {nrows}x{ncols} exceed cell limit"
        )));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        cols.push(decode_column(data, &mut pos, nrows)?);
    }
    // Reject trailing bytes. Besides catching garbage appended to a file,
    // this closes a downgrade hole: flipping the version byte of a v2 file
    // to v1 would otherwise skip checksum verification and parse cleanly,
    // with the orphaned footer silently ignored.
    if pos != data.len() {
        return Err(ColumnarError::CorruptFile(format!(
            "{} trailing bytes after table body",
            data.len() - pos
        )));
    }
    Ok(Table::from_columns(Schema::new(names), cols))
}

/// Outcome of a full-store integrity scan ([`TableStore::verify_all`]).
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Tables that decoded and checksum-verified cleanly.
    pub ok: Vec<String>,
    /// Tables whose file failed to read or decode, with the error text.
    /// These are the quarantine candidates for repair.
    pub corrupt: Vec<(String, String)>,
    /// Chunk-level localization for corrupt v3 tables: `(name, corrupt
    /// chunk labels, total chunks)`. A table appears here (in addition to
    /// `corrupt`) when its header still parses, so the damage can be
    /// pinned to specific chunks instead of quarantining blind.
    pub corrupt_chunks: Vec<(String, Vec<String>, usize)>,
    /// Tables referenced by the manifest whose file is missing entirely.
    pub missing: Vec<String>,
    /// `t*.col` files present on disk but referenced by no manifest entry
    /// (e.g. from a crash between writing a table and its manifest).
    pub orphans: Vec<String>,
}

impl VerifyReport {
    /// True when every manifest entry verified and no orphans exist.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.missing.is_empty() && self.orphans.is_empty()
    }
}

/// Chunk-granular integrity report for one v3 table
/// ([`TableStore::verify_chunks`]).
#[derive(Debug, Clone, Default)]
pub struct ChunkVerifyReport {
    /// Labels (`col <name> chunk <k>`) of chunks whose CRC or decode
    /// failed.
    pub corrupt: Vec<String>,
    /// Total chunks checked (columns × row ranges).
    pub total: usize,
}

/// Pins corruption inside a v3 image to specific chunks: parses the
/// header (skipping the whole-file footer — it is known bad or the caller
/// would not be here) and CRC-checks every chunk body. Returns `None`
/// when the image is not v3 or its header itself is damaged (nothing to
/// localize — the zone maps can't be trusted).
fn locate_corrupt_chunks(data: &[u8]) -> Option<ChunkVerifyReport> {
    if data.len() < 5 || &data[..4] != MAGIC || data[4] != VERSION_V3 {
        return None;
    }
    let ct = parse_compressed_v3(data).ok()?;
    let mut report = ChunkVerifyReport::default();
    for (c, col) in ct.cols.iter().enumerate() {
        for k in 0..col.chunks.len() {
            report.total += 1;
            if ct.decode_chunk(c, k).is_err() {
                report
                    .corrupt
                    .push(format!("col {} chunk {k}", ct.schema.name(c)));
            }
        }
    }
    Some(report)
}

/// Extracts the sequence number from a store-managed file name (`t%06d.col`).
fn table_file_seq(file: &str) -> Option<u64> {
    file.strip_prefix('t')
        .and_then(|f| f.strip_suffix(".col"))
        .and_then(|n| n.parse::<u64>().ok())
}

/// One manifest entry: the backing file plus its cached on-disk size.
///
/// The size is recorded in the manifest itself (a `#size` line) so that
/// [`TableStore::file_size`]/[`TableStore::total_size`] answer without a
/// `stat` per call — the analogue of Parquet footers carrying file-level
/// stats that planners consult without touching row groups.
#[derive(Debug, Clone)]
struct ManifestEntry {
    file: String,
    /// On-disk bytes; `None` only for legacy manifests whose file vanished
    /// before the open-time directory scan could observe it.
    bytes: Option<u64>,
}

/// A table body held by the demand cache — in **compressed** form since
/// format v3, so the byte budget admits more tables for the same memory
/// (chunks decode on demand; one full materialization is memoized inside
/// the [`CompressedTable`]).
#[derive(Debug)]
struct CachedBody {
    table: Arc<CompressedTable>,
    bytes: u64,
    last_used: u64,
}

/// Interior-mutable cache of table bodies, keyed by logical name.
///
/// `load` fills it on first touch (which is also where checksum
/// verification happens); an optional byte budget — counted over
/// *compressed* bytes — evicts least-recently-used bodies. Handed-out
/// `Arc`s keep evicted tables alive for their users — eviction only drops
/// the cache's reference.
#[derive(Debug, Default)]
struct BodyCache {
    map: FxHashMap<String, CachedBody>,
    clock: u64,
    total_bytes: u64,
    budget: Option<u64>,
}

impl BodyCache {
    fn touch(&mut self, name: &str) -> Option<Arc<CompressedTable>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(name).map(|e| {
            e.last_used = clock;
            e.table.clone()
        })
    }

    fn insert(&mut self, name: String, table: Arc<CompressedTable>) {
        let bytes = table.compressed_bytes() as u64;
        self.clock += 1;
        let entry = CachedBody {
            table,
            bytes,
            last_used: self.clock,
        };
        if let Some(old) = self.map.insert(name, entry) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
        self.evict_to_budget();
        metric_gauge!("columnar.io.cache_bytes").set(self.total_bytes);
    }

    fn remove(&mut self, name: &str) {
        if let Some(old) = self.map.remove(name) {
            self.total_bytes -= old.bytes;
            metric_gauge!("columnar.io.cache_bytes").set(self.total_bytes);
        }
    }

    /// Evicts least-recently-used bodies until the cache fits its budget.
    /// The most recent entry always survives (a single over-budget table
    /// stays resident until something else displaces it).
    fn evict_to_budget(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.total_bytes > budget && self.map.len() > 1 {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(n, _)| n.clone())
                .expect("cache checked non-empty");
            self.remove(&victim);
            metric_counter!("columnar.io.cache_evictions").inc();
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.total_bytes = 0;
        metric_gauge!("columnar.io.cache_bytes").set(0);
    }
}

/// Auxiliary manifest line carrying a file's size: `#size\t<file>\t<bytes>`.
const SIZE_PREFIX: &str = "#size\t";
/// Trailing manifest integrity line: `#crc\t<hex crc32 of entry+size lines>`.
const CRC_PREFIX: &str = "#crc\t";

/// A directory of persisted tables with an eagerly-read, checksummed
/// manifest and on-demand (lazy) table bodies.
///
/// Opening a store reads **only** the manifest: table bodies are read,
/// checksum-verified and decoded on first [`TableStore::load`], then shared
/// as [`Arc<Table>`] handles through an interior-mutability cache with an
/// optional byte-budget LRU eviction policy
/// ([`TableStore::set_cache_budget`]). This is the shared-memory analogue of
/// Spark SQL reading Parquet footers at planning time and column chunks
/// on demand during execution.
#[derive(Debug)]
pub struct TableStore {
    root: PathBuf,
    /// logical name -> backing file + cached size
    manifest: FxHashMap<String, ManifestEntry>,
    next_file: u64,
    /// Unreferenced `t*.col` files found on open (crash leftovers).
    orphans: Vec<String>,
    /// Optional deterministic fault injection; `None` costs one branch.
    faults: Option<Arc<FaultInjector>>,
    /// Demand cache of compressed bodies (interior mutability: `load`
    /// takes `&self` so engines can share the store behind an `Arc`).
    cache: Mutex<BodyCache>,
    /// Chunking/Bloom knobs for subsequent saves (`--chunk-rows`,
    /// `--no-bloom`).
    write_opts: WriteOptions,
    /// Write the legacy v2 format instead of v3 — a hook for
    /// backward-compat fixtures and the v2-vs-v3 benchmark comparison.
    legacy_v2_writes: bool,
}

impl TableStore {
    /// Creates (or opens, if it already exists) a store rooted at `root`.
    ///
    /// Reads and integrity-checks the manifest (a corrupt manifest fails
    /// the open), cleans up stale `*.tmp` files from interrupted writes and
    /// records any orphaned table files (see [`TableStore::orphans`]).
    /// Table bodies are **not** read here — they load on demand.
    pub fn open(root: impl Into<PathBuf>) -> Result<TableStore, ColumnarError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut store = TableStore {
            root,
            manifest: FxHashMap::default(),
            next_file: 0,
            orphans: Vec::new(),
            faults: None,
            cache: Mutex::new(BodyCache::default()),
            write_opts: WriteOptions::default(),
            legacy_v2_writes: false,
        };
        let manifest_path = store.manifest_path();
        if manifest_path.exists() {
            let mut content = String::new();
            BufReader::new(fs::File::open(&manifest_path)?).read_to_string(&mut content)?;
            store.parse_manifest(&content)?;
        }
        store.scan_directory()?;
        Ok(store)
    }

    /// Parses manifest content: entry lines (`name\tfile`), `#size` lines
    /// and an optional trailing `#crc` line. When the checksum line is
    /// present it must match the CRC-32 of the canonical re-serialization
    /// of the parsed entries; legacy manifests without it still load.
    fn parse_manifest(&mut self, content: &str) -> Result<(), ColumnarError> {
        let mut sizes: FxHashMap<String, u64> = FxHashMap::default();
        let mut declared_crc: Option<u32> = None;
        for line in content.lines() {
            if let Some(rest) = line.strip_prefix(SIZE_PREFIX) {
                if let Some((file, bytes)) = rest.split_once('\t') {
                    if let Ok(bytes) = bytes.parse::<u64>() {
                        sizes.insert(file.to_string(), bytes);
                    }
                }
            } else if let Some(hex) = line.strip_prefix(CRC_PREFIX) {
                declared_crc = u32::from_str_radix(hex.trim(), 16).ok();
            } else if line.starts_with('#') {
                // Unknown annotation from a future version: ignore.
            } else if let Some((name, file)) = line.split_once('\t') {
                if let Some(num) = table_file_seq(file) {
                    self.next_file = self.next_file.max(num + 1);
                }
                self.manifest.insert(
                    name.to_string(),
                    ManifestEntry {
                        file: file.to_string(),
                        bytes: None,
                    },
                );
            }
        }
        for entry in self.manifest.values_mut() {
            entry.bytes = sizes.get(&entry.file).copied();
        }
        if let Some(expected) = declared_crc {
            let actual = crc32(self.manifest_body().as_bytes());
            if actual != expected {
                metric_counter!("columnar.io.checksum_failures").inc();
                return Err(ColumnarError::ChecksumMismatch { expected, actual });
            }
        }
        Ok(())
    }

    /// Removes stale temp files, records orphaned table files (advancing
    /// the file counter past them so they are never silently overwritten),
    /// and backfills manifest sizes for legacy manifests from the same
    /// directory walk — no per-table `stat` calls afterwards.
    fn scan_directory(&mut self) -> Result<(), ColumnarError> {
        let referenced: std::collections::HashSet<&str> =
            self.manifest.values().map(|e| e.file.as_str()).collect();
        let mut orphans = Vec::new();
        let mut observed_sizes: FxHashMap<String, u64> = FxHashMap::default();
        let needs_sizes = self.manifest.values().any(|e| e.bytes.is_none());
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // Leftover from an interrupted atomic write; the rename
                // never happened so this content was never visible.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(num) = table_file_seq(&name) {
                self.next_file = self.next_file.max(num + 1);
                if needs_sizes {
                    if let Ok(meta) = entry.metadata() {
                        observed_sizes.insert(name.clone(), meta.len());
                    }
                }
                if !referenced.contains(name.as_str()) {
                    orphans.push(name);
                }
            }
        }
        if needs_sizes {
            for entry in self.manifest.values_mut() {
                if entry.bytes.is_none() {
                    entry.bytes = observed_sizes.get(&entry.file).copied();
                }
            }
        }
        orphans.sort();
        self.orphans = orphans;
        Ok(())
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.tsv")
    }

    fn cache_lock(&self) -> MutexGuard<'_, BodyCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Writes `data` to `root/file` atomically: temp file in the same
    /// directory, fsync, then rename over the target.
    fn write_atomic(&self, file: &str, data: &[u8]) -> Result<(), ColumnarError> {
        let tmp = self.root.join(format!("{file}.tmp"));
        let target = self.root.join(file);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        // Crash point between fsync and rename: an injected kill here leaves
        // the synced temp file behind (exactly what a real crash would), so
        // recovery and orphan handling can be exercised deterministically.
        if let Some(faults) = &self.faults {
            faults.crash_point(&format!("rename:{file}"))?;
        }
        if let Err(e) = fs::rename(&tmp, &target) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// The canonical entry + `#size` section of the manifest (the bytes the
    /// `#crc` integrity line covers). Entry lines stay exactly
    /// `name\tfile` for compatibility with v1 manifests and external
    /// tooling; sizes ride on `#size\tfile\tbytes` annotation lines.
    fn manifest_body(&self) -> String {
        let mut entries: Vec<_> = self.manifest.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::new();
        for (name, entry) in &entries {
            out.push_str(name);
            out.push('\t');
            out.push_str(&entry.file);
            out.push('\n');
        }
        for (_, entry) in &entries {
            if let Some(bytes) = entry.bytes {
                let _ = writeln!(out, "{SIZE_PREFIX}{}\t{bytes}", entry.file);
            }
        }
        out
    }

    fn flush_manifest(&self) -> Result<(), ColumnarError> {
        let mut out = self.manifest_body();
        let crc = crc32(out.as_bytes());
        let _ = writeln!(out, "{CRC_PREFIX}{crc:08x}");
        self.write_atomic("manifest.tsv", out.as_bytes())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Attaches (or with `None`, detaches) a deterministic fault injector
    /// applied to subsequent loads and saves.
    ///
    /// Also clears the body cache: cached bodies would otherwise satisfy
    /// loads without touching the (now fault-injected) read path, making
    /// injected faults fire nondeterministically depending on cache state.
    pub fn set_fault_injector(&mut self, faults: Option<Arc<FaultInjector>>) {
        self.faults = faults;
        self.cache_lock().clear();
    }

    /// The currently attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Sets the chunking/Bloom options for subsequent saves.
    pub fn set_write_options(&mut self, opts: WriteOptions) {
        self.write_opts = opts;
    }

    /// The chunking/Bloom options subsequent saves use.
    pub fn write_options(&self) -> WriteOptions {
        self.write_opts
    }

    /// Makes subsequent saves emit the legacy v2 format — for
    /// backward-compat fixtures and size comparisons, not production use.
    pub fn set_legacy_v2_writes(&mut self, on: bool) {
        self.legacy_v2_writes = on;
    }

    /// Orphaned `t*.col` files discovered when the store was opened: present
    /// on disk but referenced by no manifest entry. A non-empty list
    /// indicates an interrupted save (the table file landed but its manifest
    /// update did not).
    pub fn orphans(&self) -> &[String] {
        &self.orphans
    }

    /// Persists a table under a logical name, replacing any previous
    /// version.
    ///
    /// The table file is written atomically first, the manifest second; a
    /// crash in between leaves an orphan file, never a manifest entry
    /// pointing at missing or torn data.
    pub fn save(&mut self, name: &str, table: &Table) -> Result<(), ColumnarError> {
        assert!(
            !name.contains(['\t', '\n']),
            "table names must not contain tabs or newlines"
        );
        let file = match self.manifest.get(name) {
            Some(e) => e.file.clone(),
            None => {
                let f = format!("t{:06}.col", self.next_file);
                self.next_file += 1;
                f
            }
        };
        let mut data = if self.legacy_v2_writes {
            serialize_table_v2(table)
        } else {
            serialize_table_opts(table, &self.write_opts)
        };
        if let Some(faults) = &self.faults {
            if let Err(e) = faults.before_write(name) {
                metric_counter!("columnar.io.fault_write_errors").inc();
                return Err(e.into());
            }
            // Media-side corruption: the store writes what it was handed,
            // silently damaged. The checksum footer catches it at read time.
            faults.mutate(&mut data);
        }
        metric_counter!("columnar.io.tables_written").inc();
        metric_counter!("columnar.io.bytes_written").add(data.len() as u64);
        self.write_atomic(&file, &data)?;
        self.manifest.insert(
            name.to_string(),
            ManifestEntry {
                file,
                bytes: Some(data.len() as u64),
            },
        );
        // The cached body (if any) no longer reflects disk.
        self.cache_lock().remove(name);
        self.flush_manifest()
    }

    /// Loads a table by logical name, sharing the decoded body.
    ///
    /// Built on [`TableStore::load_compressed`]: the cache holds the
    /// compressed form, and this fully materializes it (memoized inside
    /// the [`CompressedTable`], so repeat loads share one `Arc<Table>`
    /// without re-decoding).
    pub fn load(&self, name: &str) -> Result<Arc<Table>, ColumnarError> {
        self.load_compressed(name)?.materialize()
    }

    /// Loads a table in compressed form, sharing the body through the
    /// cache without decoding any chunk.
    ///
    /// First touch reads the file, checksum-verifies the whole image (v3
    /// footer / header CRCs; v2 footer) and parses the chunk directory;
    /// repeat loads return the cached `Arc` without I/O. An optional byte
    /// budget ([`TableStore::set_cache_budget`]) bounds resident bodies —
    /// counted in *compressed* bytes, so the same budget keeps more tables
    /// warm than it did for decoded bodies — with LRU eviction.
    /// `columnar.io.{tables_read,bytes_read}` therefore count *demanded*
    /// tables, not store size — the quantity the ExtVP design optimizes.
    pub fn load_compressed(&self, name: &str) -> Result<Arc<CompressedTable>, ColumnarError> {
        let entry = self
            .manifest
            .get(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        if let Some(hit) = self.cache_lock().touch(name) {
            metric_counter!("columnar.io.cache_hits").inc();
            return Ok(hit);
        }
        metric_counter!("columnar.io.cache_misses").inc();
        let mut data = {
            if let Some(faults) = &self.faults {
                if let Err(e) = faults.before_read(name) {
                    metric_counter!("columnar.io.fault_read_errors").inc();
                    return Err(e.into());
                }
            }
            fs::read(self.root.join(&entry.file))?
        };
        if let Some(faults) = &self.faults {
            faults.mutate(&mut data);
        }
        metric_counter!("columnar.io.tables_read").inc();
        metric_counter!("columnar.io.bytes_read").add(data.len() as u64);
        let table = Arc::new(parse_compressed(&data, true)?);
        metric_counter!("columnar.io.bytes_compressed").add(table.compressed_bytes() as u64);
        metric_counter!("columnar.io.bytes_logical").add(table.logical_bytes() as u64);
        self.cache_lock().insert(name.to_string(), table.clone());
        Ok(table)
    }

    /// Fast integrity probe of one table's on-disk bytes: verifies the v2
    /// CRC footer over the raw file **without decoding** (v1 files, having
    /// no footer, fall back to a full decode). Reads the actual disk state,
    /// bypassing any attached fault injector — this is a diagnostic for
    /// sweeps (quarantine scans, `verify`), not a data access, and is
    /// counted separately from `columnar.io.tables_read`.
    pub fn verify_checksum(&self, name: &str) -> Result<(), ColumnarError> {
        let entry = self
            .manifest
            .get(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        let data = fs::read(self.root.join(&entry.file))?;
        metric_counter!("columnar.io.sweep_files").inc();
        metric_counter!("columnar.io.sweep_bytes").add(data.len() as u64);
        verify_raw_checksum(&data)
    }

    /// Sets (or with `None`, removes) the byte budget for cached table
    /// bodies, counted in *compressed* (on-disk) bytes. Shrinking below
    /// current residency evicts LRU bodies immediately; handed-out `Arc`s
    /// stay valid.
    pub fn set_cache_budget(&self, bytes: Option<u64>) {
        let mut cache = self.cache_lock();
        cache.budget = bytes;
        cache.evict_to_budget();
    }

    /// Total compressed bytes currently resident in the body cache.
    pub fn cached_bytes(&self) -> u64 {
        self.cache_lock().total_bytes
    }

    /// Number of table bodies currently resident in the body cache.
    pub fn cached_tables(&self) -> usize {
        self.cache_lock().map.len()
    }

    /// Drops all cached bodies (handed-out `Arc`s stay valid).
    pub fn clear_cache(&self) {
        self.cache_lock().clear();
    }

    /// Verifies every table in the manifest by reading and fully decoding
    /// it (which checks the whole-file CRC footer on v2/v3 and every
    /// per-chunk CRC on v3), reporting corrupt entries, missing files and
    /// orphans. For corrupt v3 files whose chunk directory is still
    /// parseable, the damage is additionally localized to individual
    /// chunks in [`VerifyReport::corrupt_chunks`], so a repair pass can
    /// report (and a rebuild can target) the affected row ranges instead
    /// of writing off the whole table.
    ///
    /// Reads the files directly, bypassing any attached fault injector:
    /// verification must observe the actual on-disk state so that a repair
    /// pass can converge.
    pub fn verify_all(&self) -> VerifyReport {
        let mut report = VerifyReport {
            orphans: self.orphans.clone(),
            ..VerifyReport::default()
        };
        let mut entries: Vec<_> = self.manifest.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (name, entry) in entries {
            match fs::read(self.root.join(&entry.file)) {
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    report.missing.push(name.clone());
                }
                Err(e) => report.corrupt.push((name.clone(), e.to_string())),
                Ok(data) => match deserialize_table(&data) {
                    Ok(_) => report.ok.push(name.clone()),
                    Err(e) => {
                        report.corrupt.push((name.clone(), e.to_string()));
                        if let Some(chunks) = locate_corrupt_chunks(&data) {
                            report.corrupt_chunks.push((
                                name.clone(),
                                chunks.corrupt,
                                chunks.total,
                            ));
                        }
                    }
                },
            }
        }
        report
    }

    /// Chunk-granular integrity check of one table, read directly from
    /// disk (bypassing cache and fault injector). For v3 files whose
    /// header parses, returns which chunks fail their CRC — an intact
    /// chunk directory with a damaged body localizes corruption to a few
    /// row ranges. For v2/v1 files (no per-chunk CRCs) the whole file is
    /// one "chunk": the report has `total == 1` and lists it as corrupt
    /// iff the full decode fails.
    pub fn verify_chunks(&self, name: &str) -> Result<ChunkVerifyReport, ColumnarError> {
        let entry = self
            .manifest
            .get(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        let data = fs::read(self.root.join(&entry.file))?;
        if let Some(report) = locate_corrupt_chunks(&data) {
            return Ok(report);
        }
        // Legacy format (or a v3 header too damaged to parse): all-or-nothing.
        Ok(match deserialize_table(&data) {
            Ok(_) => ChunkVerifyReport {
                corrupt: Vec::new(),
                total: 1,
            },
            Err(e) => ChunkVerifyReport {
                corrupt: vec![format!("whole file: {e}")],
                total: 1,
            },
        })
    }

    /// Rewrites every v1/v2 file in the store in the current (v3) format,
    /// returning how many were upgraded. Called from checkpoints so stores
    /// created before the chunked format converge to it without an
    /// explicit migration step. Files already in v3 are left untouched
    /// (their bytes are not rewritten, preserving mtimes and avoiding
    /// needless churn).
    pub fn upgrade_legacy(&mut self) -> Result<usize, ColumnarError> {
        if self.legacy_v2_writes {
            return Ok(0);
        }
        let mut legacy: Vec<String> = Vec::new();
        for (name, entry) in &self.manifest {
            let path = self.root.join(&entry.file);
            let mut head = [0u8; 5];
            let ok = fs::File::open(&path)
                .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut head))
                .is_ok();
            if ok && &head[..4] == MAGIC && head[4] != VERSION_V3 {
                legacy.push(name.clone());
            }
        }
        legacy.sort();
        for name in &legacy {
            let table = self.load(name)?;
            self.save(name, &table)?;
        }
        Ok(legacy.len())
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.manifest.contains_key(name)
    }

    /// Logical names of all stored tables (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.manifest.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of stored tables.
    pub fn len(&self) -> usize {
        self.manifest.len()
    }

    /// True if the store holds no tables.
    pub fn is_empty(&self) -> bool {
        self.manifest.is_empty()
    }

    /// On-disk size of one table in bytes, answered from the manifest's
    /// cached size (no `stat`). Falls back to one `stat` only for legacy
    /// manifests whose size annotation is absent.
    pub fn file_size(&self, name: &str) -> Result<u64, ColumnarError> {
        let entry = self
            .manifest
            .get(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        match entry.bytes {
            Some(bytes) => Ok(bytes),
            None => Ok(fs::metadata(self.root.join(&entry.file))?.len()),
        }
    }

    /// Total on-disk size of all tables (the "HDFS size" of paper Tables 2
    /// and 6), summed from manifest-cached sizes — O(tables) map reads, not
    /// O(tables) `stat` syscalls per call.
    pub fn total_size(&self) -> Result<u64, ColumnarError> {
        let mut total = 0;
        for entry in self.manifest.values() {
            total += match entry.bytes {
                Some(bytes) => bytes,
                None => fs::metadata(self.root.join(&entry.file))?.len(),
            };
        }
        Ok(total)
    }

    /// Removes a table, invalidating its cached body and size.
    ///
    /// The manifest is flushed *before* the file is deleted: a crash in
    /// between leaves an unreferenced file (an orphan, swept at the next
    /// checkpoint), never a manifest entry pointing at missing data.
    pub fn remove(&mut self, name: &str) -> Result<(), ColumnarError> {
        let entry = self
            .manifest
            .remove(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        self.cache_lock().remove(name);
        self.flush_manifest()?;
        match fs::remove_file(self.root.join(&entry.file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Deletes the orphaned table files recorded at open time (residue of a
    /// save interrupted between table write and manifest update) and clears
    /// the orphan list. Returns the deleted file names. Checkpoints call
    /// this so a store that crashed mid-flush verifies clean again after
    /// the next successful checkpoint.
    pub fn sweep_orphans(&mut self) -> Result<Vec<String>, ColumnarError> {
        let orphans = std::mem::take(&mut self.orphans);
        for file in &orphans {
            match fs::remove_file(self.root.join(file)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(orphans)
    }
}

/// Checks a raw serialized table image's integrity without decoding it:
/// magic, version, and (for v2/v3) the whole-file CRC-32 footer. v1
/// images carry no footer, so the only verification possible is a full
/// decode.
fn verify_raw_checksum(data: &[u8]) -> Result<(), ColumnarError> {
    if data.len() < 5 || &data[..4] != MAGIC {
        return Err(ColumnarError::CorruptFile("bad magic".into()));
    }
    match data[4] {
        VERSION | VERSION_V3 => {
            if data.len() < 5 + FOOTER_LEN {
                return Err(ColumnarError::CorruptFile(
                    "truncated checksum footer".into(),
                ));
            }
            let body_end = data.len() - FOOTER_LEN;
            let expected = u32::from_le_bytes(data[body_end..].try_into().expect("4-byte footer"));
            let actual = crc32(&data[..body_end]);
            if actual != expected {
                metric_counter!("columnar.io.checksum_failures").inc();
                return Err(ColumnarError::ChecksumMismatch { expected, actual });
            }
            Ok(())
        }
        VERSION_V1 => deserialize_table(data).map(|_| ()),
        other => Err(ColumnarError::CorruptFile(format!(
            "unsupported version {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use proptest::prelude::*;

    fn sample() -> Table {
        Table::from_rows(
            Schema::new(["s", "o"]),
            &[[1, 100], [1, 100], [1, 100], [2, 5], [3, 7]],
        )
    }

    fn lcg_column(n: usize, card: u32, mut state: u64) -> Vec<u32> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as u32) % card
            })
            .collect()
    }

    #[test]
    fn serialize_roundtrip() {
        let t = sample();
        let bytes = serialize_table(&t);
        let back = deserialize_table(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rle_beats_plain_on_constant_columns() {
        // v2-specific encoding property (v3 compresses both sides well, so
        // compare on the legacy serializer where the gap is meaningful).
        let constant = Table::from_columns(Schema::new(["c"]), vec![vec![42; 10_000]]);
        let varied = Table::from_columns(Schema::new(["c"]), vec![(0..10_000u32).collect()]);
        let small = serialize_table_v2(&constant).len();
        let large = serialize_table_v2(&varied).len();
        assert!(small * 100 < large, "RLE column {small}B vs plain {large}B");
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(deserialize_table(b"oops").is_err());
        let mut bytes = serialize_table(&sample());
        bytes[4] = 99; // bad version
        assert!(deserialize_table(&bytes).is_err());
        let bytes = serialize_table(&sample());
        assert!(deserialize_table(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn checksum_detects_body_corruption() {
        let bytes = serialize_table(&sample());
        // Flip every body byte in turn (skip magic/version so the error is
        // specifically the checksum, and skip the footer itself).
        for i in 5..bytes.len() - FOOTER_LEN {
            let mut m = bytes.clone();
            m[i] ^= 0x40;
            match deserialize_table(&m) {
                Err(ColumnarError::ChecksumMismatch { .. }) => {}
                other => panic!("byte {i}: expected checksum mismatch, got {other:?}"),
            }
        }
        // Corrupting the footer itself must also fail.
        let mut m = bytes.clone();
        let last = m.len() - 1;
        m[last] ^= 0xff;
        assert!(matches!(
            deserialize_table(&m),
            Err(ColumnarError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn v1_files_without_footer_still_load() {
        // Hand-build a v1 image: the v2 body minus footer, version byte 1.
        let t = sample();
        let v2 = serialize_table_v2(&t);
        let mut v1 = v2[..v2.len() - FOOTER_LEN].to_vec();
        v1[4] = VERSION_V1;
        assert_eq!(deserialize_table(&v1).unwrap(), t);
    }

    #[test]
    fn hostile_dimensions_rejected_not_allocated() {
        // Header claiming u64::MAX rows must fail fast, not abort on OOM.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION_V1); // v1: no footer needed for a hand-built image
        write_varint(&mut bytes, 1); // 1 column
        write_varint(&mut bytes, 1);
        bytes.push(b'c');
        write_varint(&mut bytes, u64::MAX); // absurd row count
        bytes.push(ENC_RLE);
        let mut body = Vec::new();
        write_varint(&mut body, 7);
        write_varint(&mut body, u64::MAX); // absurd run length
        write_varint(&mut bytes, body.len() as u64);
        bytes.extend_from_slice(&body);
        assert!(deserialize_table(&bytes).is_err());
    }

    #[test]
    fn store_save_load_cycle() {
        let dir = std::env::temp_dir().join(format!("s2ct-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut store = TableStore::open(&dir).unwrap();
            store.save("VP/follows", &sample()).unwrap();
            store.save("ExtVP_OS/follows|likes", &sample()).unwrap();
            assert_eq!(store.len(), 2);
            assert!(store.file_size("VP/follows").unwrap() > 0);
            assert!(store.total_size().unwrap() > 0);
        }
        {
            // Re-open and read back.
            let mut store = TableStore::open(&dir).unwrap();
            assert_eq!(store.len(), 2);
            assert!(store.orphans().is_empty());
            assert_eq!(*store.load("ExtVP_OS/follows|likes").unwrap(), sample());
            store.remove("VP/follows").unwrap();
            assert!(!store.contains("VP/follows"));
            assert!(store.load("VP/follows").is_err());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_without_leaking_files() {
        let dir = std::env::temp_dir().join(format!("s2ct-replace-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        store.save("t", &sample()).unwrap();
        let before = store.file_size("t").unwrap();
        let bigger = Table::from_columns(
            Schema::new(["s", "o"]),
            vec![(0..999).collect(), (0..999).collect()],
        );
        store.save("t", &bigger).unwrap();
        assert!(store.file_size("t").unwrap() > before);
        assert_eq!(store.len(), 1);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 2); // table + manifest
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_files_detected_and_not_overwritten() {
        let dir = std::env::temp_dir().join(format!("s2ct-orphan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut store = TableStore::open(&dir).unwrap();
            store.save("keep", &sample()).unwrap();
        }
        // Simulate a crash between table write and manifest update: a table
        // file lands with no manifest entry.
        fs::write(dir.join("t000007.col"), serialize_table(&sample())).unwrap();
        // And an interrupted atomic write leaves a temp file.
        fs::write(dir.join("t000008.col.tmp"), b"partial").unwrap();
        let mut store = TableStore::open(&dir).unwrap();
        assert_eq!(store.orphans(), ["t000007.col"]);
        assert!(!dir.join("t000008.col.tmp").exists(), "stale tmp cleaned");
        // New saves must not reuse the orphan's file name.
        store.save("new", &sample()).unwrap();
        assert_eq!(*store.load("new").unwrap(), sample());
        assert!(dir.join("t000007.col").exists());
        let report = store.verify_all();
        assert_eq!(report.orphans, ["t000007.col"]);
        assert_eq!(report.ok.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_all_flags_corrupt_and_missing() {
        let dir = std::env::temp_dir().join(format!("s2ct-verify-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        store.save("good", &sample()).unwrap();
        store.save("bad", &sample()).unwrap();
        store.save("gone", &sample()).unwrap();
        // Corrupt "bad" in place, delete "gone"'s file.
        let bad_file = store.manifest.get("bad").unwrap().file.clone();
        let mut data = fs::read(dir.join(&bad_file)).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x10;
        fs::write(dir.join(&bad_file), &data).unwrap();
        let gone_file = store.manifest.get("gone").unwrap().file.clone();
        fs::remove_file(dir.join(&gone_file)).unwrap();

        let report = store.verify_all();
        assert_eq!(report.ok, ["good"]);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].0, "bad");
        assert!(
            report.corrupt[0].1.contains("checksum"),
            "{}",
            report.corrupt[0].1
        );
        assert_eq!(report.missing, ["gone"]);
        assert!(!report.is_clean());
        assert!(matches!(
            store.load("bad"),
            Err(ColumnarError::ChecksumMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_injector_write_errors_surface() {
        let dir = std::env::temp_dir().join(format!("s2ct-fault-w-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultConfig {
            seed: 3,
            write_error: 1.0,
            ..FaultConfig::default()
        }));
        store.set_fault_injector(Some(inj.clone()));
        assert!(store.save("t", &sample()).is_err());
        assert_eq!(inj.stats().write_errors, 1);
        // The failed save must not have registered the table.
        store.set_fault_injector(None);
        assert!(!store.contains("t"));
        assert!(store.verify_all().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_injector_bit_flips_caught_by_checksum() {
        let dir = std::env::temp_dir().join(format!("s2ct-fault-r-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        store.save("t", &sample()).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultConfig {
            seed: 11,
            bit_flip: 1.0,
            ..FaultConfig::default()
        }));
        store.set_fault_injector(Some(inj.clone()));
        let err = store.load("t").unwrap_err();
        assert!(
            matches!(
                err,
                ColumnarError::ChecksumMismatch { .. } | ColumnarError::CorruptFile(_)
            ),
            "bit flip must not decode silently: {err:?}"
        );
        assert_eq!(inj.stats().bit_flips, 1);
        // Detaching the injector restores clean reads: the disk was fine.
        store.set_fault_injector(None);
        assert_eq!(*store.load("t").unwrap(), sample());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_open_reads_no_bodies_and_caches_loads() {
        use crate::metrics;
        let dir = std::env::temp_dir().join(format!("s2ct-lazy-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut store = TableStore::open(&dir).unwrap();
            for i in 0..20 {
                store.save(&format!("t{i}"), &sample()).unwrap();
            }
        }
        let _guard = metrics::test_lock();
        let reads = metrics::counter("columnar.io.tables_read");
        let hits = metrics::counter("columnar.io.cache_hits");
        metrics::set_enabled(true);
        let reads0 = reads.get();
        let hits0 = hits.get();
        let store = TableStore::open(&dir).unwrap();
        assert_eq!(reads.get(), reads0, "open must not read table bodies");
        assert_eq!(store.cached_tables(), 0);
        // First touch reads + decodes once; repeats are cache hits sharing
        // the same body.
        let a = store.load("t3").unwrap();
        let b = store.load("t3").unwrap();
        metrics::set_enabled(false);
        assert!(Arc::ptr_eq(&a, &b), "cache must share one body");
        assert_eq!(reads.get() - reads0, 1, "one physical read for two loads");
        assert_eq!(hits.get() - hits0, 1);
        assert_eq!(store.cached_tables(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_budget_evicts_lru_bodies() {
        let dir = std::env::temp_dir().join(format!("s2ct-evict-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        let body = Table::from_columns(
            Schema::new(["a"]),
            vec![(0..1000u32).collect()], // 4000 payload bytes
        );
        for i in 0..4 {
            store.save(&format!("t{i}"), &body).unwrap();
        }
        // The cache accounts *compressed* bytes; budget two files' worth.
        let unit = store.file_size("t0").unwrap();
        store.set_cache_budget(Some(2 * unit));
        let keep = store.load("t0").unwrap();
        store.load("t1").unwrap();
        assert_eq!(store.cached_tables(), 2);
        store.load("t2").unwrap(); // evicts t0 (LRU)
        assert_eq!(store.cached_tables(), 2);
        assert!(store.cached_bytes() <= 2 * unit);
        // The evicted body's Arc handle stays usable.
        assert_eq!(keep.num_rows(), 1000);
        // Touch order matters: reload t1 (hit), then t3 must evict t2.
        store.load("t1").unwrap();
        store.load("t3").unwrap();
        assert_eq!(store.cached_tables(), 2);
        // Budget removal stops eviction.
        store.set_cache_budget(None);
        store.load("t0").unwrap();
        store.load("t2").unwrap();
        assert_eq!(store.cached_tables(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v2_write_mode_roundtrips_and_upgrades() {
        let dir = std::env::temp_dir().join(format!("s2ct-v2mode-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let t = sample();
        {
            let mut store = TableStore::open(&dir).unwrap();
            store.set_legacy_v2_writes(true);
            store.save("t", &t).unwrap();
        }
        let mut store = TableStore::open(&dir).unwrap();
        let file = store.manifest.get("t").unwrap().file.clone();
        let raw = fs::read(dir.join(&file)).unwrap();
        assert_eq!(raw[4], VERSION, "legacy mode must write v2");
        assert_eq!(*store.load("t").unwrap(), t);
        // Upgrade rewrites it as v3 with identical contents.
        assert_eq!(store.upgrade_legacy().unwrap(), 1);
        let file = store.manifest.get("t").unwrap().file.clone();
        let raw = fs::read(dir.join(&file)).unwrap();
        assert_eq!(raw[4], VERSION_V3, "upgrade must write v3");
        store.clear_cache();
        assert_eq!(*store.load("t").unwrap(), t);
        // Second pass is a no-op.
        assert_eq!(store.upgrade_legacy().unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_chunks_localizes_corruption() {
        let dir = std::env::temp_dir().join(format!("s2ct-chunkverify-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        store.set_write_options(WriteOptions {
            chunk_rows: 64,
            bloom: false,
        });
        let t = Table::from_columns(Schema::new(["a"]), vec![lcg_column(1000, 1 << 20, 7)]);
        store.save("t", &t).unwrap();
        let report = store.verify_chunks("t").unwrap();
        assert_eq!(report.total, 1000usize.div_ceil(64));
        assert!(report.corrupt.is_empty());
        // Flip one byte in the last chunk's body: only that chunk reports.
        let file = store.manifest.get("t").unwrap().file.clone();
        let path = dir.join(&file);
        let mut raw = fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - FOOTER_LEN - 2] ^= 0x01;
        fs::write(&path, &raw).unwrap();
        let report = store.verify_chunks("t").unwrap();
        assert_eq!(report.corrupt.len(), 1, "damage must localize: {report:?}");
        assert!(report.corrupt[0].contains("chunk 15"), "{report:?}");
        // verify_all reports the table corrupt AND drills into chunks.
        let all = store.verify_all();
        assert_eq!(all.corrupt.len(), 1);
        assert_eq!(all.corrupt_chunks.len(), 1);
        let (name, chunks, total) = &all.corrupt_chunks[0];
        assert_eq!(name, "t");
        assert_eq!(chunks.len(), 1);
        assert_eq!(*total, 1000usize.div_ceil(64));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sizes_come_from_manifest_not_stat() {
        let dir = std::env::temp_dir().join(format!("s2ct-sizes-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        store.save("a", &sample()).unwrap();
        store.save("b", &sample()).unwrap();
        let a_size = store.file_size("a").unwrap();
        assert_eq!(a_size, serialize_table(&sample()).len() as u64);
        assert_eq!(store.total_size().unwrap(), 2 * a_size);
        // Delete a backing file behind the store's back: sizes must still
        // answer (from the manifest), proving no per-call stat.
        let a_file = store.manifest.get("a").unwrap().file.clone();
        fs::remove_file(dir.join(&a_file)).unwrap();
        assert_eq!(store.file_size("a").unwrap(), a_size);
        assert_eq!(store.total_size().unwrap(), 2 * a_size);
        // Invalidation on save: a replacement updates the cached size…
        let bigger = Table::from_columns(
            Schema::new(["s", "o"]),
            vec![(0..999).collect(), (0..999).collect()],
        );
        store.save("b", &bigger).unwrap();
        let b_size = store.file_size("b").unwrap();
        assert_eq!(b_size, serialize_table(&bigger).len() as u64);
        assert_eq!(store.total_size().unwrap(), a_size + b_size);
        // …and on remove the size disappears with the entry.
        store.save("a", &sample()).unwrap(); // restore the deleted file first
        store.remove("a").unwrap();
        assert!(matches!(
            store.file_size("a"),
            Err(ColumnarError::NoSuchTable(_))
        ));
        assert_eq!(store.total_size().unwrap(), b_size);
        // Cached sizes persist in the manifest across a reopen.
        let reopened = TableStore::open(&dir).unwrap();
        assert_eq!(reopened.file_size("b").unwrap(), b_size);
        assert_eq!(reopened.total_size().unwrap(), b_size);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_checksum_detects_tampering() {
        let dir = std::env::temp_dir().join(format!("s2ct-mancrc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut store = TableStore::open(&dir).unwrap();
            store.save("t", &sample()).unwrap();
        }
        let path = dir.join("manifest.tsv");
        let content = fs::read_to_string(&path).unwrap();
        assert!(
            content.contains("#crc\t"),
            "manifest must carry a checksum line"
        );
        // Tamper with an entry line without updating the checksum.
        let tampered = content.replace("t\t", "u\t");
        assert_ne!(tampered, content);
        fs::write(&path, &tampered).unwrap();
        assert!(matches!(
            TableStore::open(&dir),
            Err(ColumnarError::ChecksumMismatch { .. })
        ));
        // Legacy manifests without the checksum line still open.
        let legacy: String =
            content
                .lines()
                .filter(|l| !l.starts_with('#'))
                .fold(String::new(), |mut s, l| {
                    s.push_str(l);
                    s.push('\n');
                    s
                });
        fs::write(&path, &legacy).unwrap();
        let store = TableStore::open(&dir).unwrap();
        assert_eq!(*store.load("t").unwrap(), sample());
        assert!(store.file_size("t").unwrap() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_checksum_probes_without_decoding() {
        use crate::metrics;
        let dir = std::env::temp_dir().join(format!("s2ct-probe-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        store.save("ok", &sample()).unwrap();
        store.save("bad", &sample()).unwrap();
        let bad_file = store.manifest.get("bad").unwrap().file.clone();
        let mut data = fs::read(dir.join(&bad_file)).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x20;
        fs::write(dir.join(&bad_file), &data).unwrap();

        let _guard = metrics::test_lock();
        let reads = metrics::counter("columnar.io.tables_read");
        metrics::set_enabled(true);
        let reads0 = reads.get();
        assert!(store.verify_checksum("ok").is_ok());
        assert!(matches!(
            store.verify_checksum("bad"),
            Err(ColumnarError::ChecksumMismatch { .. })
        ));
        metrics::set_enabled(false);
        assert_eq!(reads.get(), reads0, "sweeps must not count as table reads");
        assert!(matches!(
            store.verify_checksum("gone"),
            Err(ColumnarError::NoSuchTable(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn prop_serialize_roundtrip(rows in proptest::collection::vec((any::<u32>(), 0u32..50), 0..200)) {
            let cols = vec![
                rows.iter().map(|r| r.0).collect::<Vec<_>>(),
                rows.iter().map(|r| r.1).collect::<Vec<_>>(),
            ];
            let t = Table::from_columns(Schema::new(["a", "b"]), cols);
            let back = deserialize_table(&serialize_table(&t)).unwrap();
            prop_assert_eq!(back, t);
        }
    }
}
