//! Persistent table store: the stand-in for Parquet files on HDFS.
//!
//! Tables are serialized one file per table into a store directory, in a
//! small columnar format with per-column lightweight compression (choosing
//! per column between a plain varint stream and run-length encoding —
//! standing in for Parquet's RLE + snappy, see DESIGN.md). A `manifest.tsv`
//! maps logical table names (which contain characters like `|` that the
//! ExtVP naming scheme uses) to on-disk file names.

use std::fs;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use rustc_hash::FxHashMap;

use crate::error::ColumnarError;
use crate::schema::Schema;
use crate::table::Table;

const MAGIC: &[u8; 4] = b"S2CT";
const VERSION: u8 = 1;
const ENC_PLAIN: u8 = 0;
const ENC_RLE: u8 = 1;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, ColumnarError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| ColumnarError::CorruptFile("truncated varint".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(ColumnarError::CorruptFile("varint overflow".into()));
        }
    }
}

fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Encodes one column, picking the smaller of plain-varint and RLE.
fn encode_column(col: &[u32], out: &mut Vec<u8>) {
    let mut plain_size = 0usize;
    let mut rle_size = 0usize;
    let mut i = 0;
    while i < col.len() {
        let mut run = 1;
        while i + run < col.len() && col[i + run] == col[i] {
            run += 1;
        }
        rle_size += varint_len(col[i] as u64) + varint_len(run as u64);
        i += run;
    }
    for &v in col {
        plain_size += varint_len(v as u64);
    }

    if rle_size < plain_size {
        out.push(ENC_RLE);
        let mut body = Vec::with_capacity(rle_size);
        let mut i = 0;
        while i < col.len() {
            let mut run = 1;
            while i + run < col.len() && col[i + run] == col[i] {
                run += 1;
            }
            write_varint(&mut body, col[i] as u64);
            write_varint(&mut body, run as u64);
            i += run;
        }
        write_varint(out, body.len() as u64);
        out.extend_from_slice(&body);
    } else {
        out.push(ENC_PLAIN);
        let mut body = Vec::with_capacity(plain_size);
        for &v in col {
            write_varint(&mut body, v as u64);
        }
        write_varint(out, body.len() as u64);
        out.extend_from_slice(&body);
    }
}

fn decode_column(data: &[u8], pos: &mut usize, nrows: usize) -> Result<Vec<u32>, ColumnarError> {
    let tag = *data
        .get(*pos)
        .ok_or_else(|| ColumnarError::CorruptFile("missing column tag".into()))?;
    *pos += 1;
    let body_len = read_varint(data, pos)? as usize;
    let end = *pos + body_len;
    if end > data.len() {
        return Err(ColumnarError::CorruptFile("truncated column body".into()));
    }
    let mut col = Vec::with_capacity(nrows);
    match tag {
        ENC_PLAIN => {
            while *pos < end {
                col.push(read_varint(data, pos)? as u32);
            }
        }
        ENC_RLE => {
            while *pos < end {
                let value = read_varint(data, pos)? as u32;
                let run = read_varint(data, pos)? as usize;
                col.extend(std::iter::repeat_n(value, run));
            }
        }
        other => {
            return Err(ColumnarError::CorruptFile(format!(
                "unknown column encoding {other}"
            )))
        }
    }
    if col.len() != nrows {
        return Err(ColumnarError::CorruptFile(format!(
            "column decoded to {} rows, expected {nrows}",
            col.len()
        )));
    }
    Ok(col)
}

/// Serializes a table into the columnar file format.
pub fn serialize_table(table: &Table) -> Vec<u8> {
    let mut out = Vec::with_capacity(table.byte_size() / 2 + 64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    write_varint(&mut out, table.schema().len() as u64);
    for name in table.schema().names() {
        write_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
    write_varint(&mut out, table.num_rows() as u64);
    for col in table.columns() {
        encode_column(col, &mut out);
    }
    out
}

/// Deserializes a table from the columnar file format.
pub fn deserialize_table(data: &[u8]) -> Result<Table, ColumnarError> {
    if data.len() < 5 || &data[..4] != MAGIC {
        return Err(ColumnarError::CorruptFile("bad magic".into()));
    }
    if data[4] != VERSION {
        return Err(ColumnarError::CorruptFile(format!(
            "unsupported version {}",
            data[4]
        )));
    }
    let mut pos = 5;
    let ncols = read_varint(data, &mut pos)? as usize;
    let mut names = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let len = read_varint(data, &mut pos)? as usize;
        let end = pos + len;
        let bytes = data
            .get(pos..end)
            .ok_or_else(|| ColumnarError::CorruptFile("truncated column name".into()))?;
        names.push(
            std::str::from_utf8(bytes)
                .map_err(|_| ColumnarError::CorruptFile("non-utf8 column name".into()))?
                .to_string(),
        );
        pos = end;
    }
    let nrows = read_varint(data, &mut pos)? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        cols.push(decode_column(data, &mut pos, nrows)?);
    }
    Ok(Table::from_columns(Schema::new(names), cols))
}

/// A directory of persisted tables with a name manifest.
#[derive(Debug)]
pub struct TableStore {
    root: PathBuf,
    /// logical name -> file name
    manifest: FxHashMap<String, String>,
    next_file: u64,
}

impl TableStore {
    /// Creates (or opens, if it already exists) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<TableStore, ColumnarError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut store = TableStore { root, manifest: FxHashMap::default(), next_file: 0 };
        let manifest_path = store.manifest_path();
        if manifest_path.exists() {
            let mut content = String::new();
            BufReader::new(fs::File::open(&manifest_path)?).read_to_string(&mut content)?;
            for line in content.lines() {
                if let Some((name, file)) = line.split_once('\t') {
                    if let Some(num) = file
                        .strip_prefix('t')
                        .and_then(|f| f.strip_suffix(".col"))
                        .and_then(|n| n.parse::<u64>().ok())
                    {
                        store.next_file = store.next_file.max(num + 1);
                    }
                    store.manifest.insert(name.to_string(), file.to_string());
                }
            }
        }
        Ok(store)
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.tsv")
    }

    fn flush_manifest(&self) -> Result<(), ColumnarError> {
        let mut entries: Vec<_> = self.manifest.iter().collect();
        entries.sort();
        let mut out = BufWriter::new(fs::File::create(self.manifest_path())?);
        for (name, file) in entries {
            writeln!(out, "{name}\t{file}")?;
        }
        out.flush()?;
        Ok(())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Persists a table under a logical name, replacing any previous
    /// version.
    pub fn save(&mut self, name: &str, table: &Table) -> Result<(), ColumnarError> {
        assert!(
            !name.contains(['\t', '\n']),
            "table names must not contain tabs or newlines"
        );
        let file = match self.manifest.get(name) {
            Some(f) => f.clone(),
            None => {
                let f = format!("t{:06}.col", self.next_file);
                self.next_file += 1;
                f
            }
        };
        fs::write(self.root.join(&file), serialize_table(table))?;
        self.manifest.insert(name.to_string(), file);
        self.flush_manifest()
    }

    /// Loads a table by logical name.
    pub fn load(&self, name: &str) -> Result<Table, ColumnarError> {
        let file = self
            .manifest
            .get(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        let data = fs::read(self.root.join(file))?;
        deserialize_table(&data)
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.manifest.contains_key(name)
    }

    /// Logical names of all stored tables (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.manifest.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of stored tables.
    pub fn len(&self) -> usize {
        self.manifest.len()
    }

    /// True if the store holds no tables.
    pub fn is_empty(&self) -> bool {
        self.manifest.is_empty()
    }

    /// On-disk size of one table in bytes.
    pub fn file_size(&self, name: &str) -> Result<u64, ColumnarError> {
        let file = self
            .manifest
            .get(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        Ok(fs::metadata(self.root.join(file))?.len())
    }

    /// Total on-disk size of all tables (the "HDFS size" of paper Tables 2
    /// and 6).
    pub fn total_size(&self) -> Result<u64, ColumnarError> {
        let mut total = 0;
        for file in self.manifest.values() {
            total += fs::metadata(self.root.join(file))?.len();
        }
        Ok(total)
    }

    /// Removes a table.
    pub fn remove(&mut self, name: &str) -> Result<(), ColumnarError> {
        let file = self
            .manifest
            .remove(name)
            .ok_or_else(|| ColumnarError::NoSuchTable(name.to_string()))?;
        fs::remove_file(self.root.join(file))?;
        self.flush_manifest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Table {
        Table::from_rows(
            Schema::new(["s", "o"]),
            &[[1, 100], [1, 100], [1, 100], [2, 5], [3, 7]],
        )
    }

    #[test]
    fn serialize_roundtrip() {
        let t = sample();
        let bytes = serialize_table(&t);
        let back = deserialize_table(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rle_beats_plain_on_constant_columns() {
        let constant = Table::from_columns(Schema::new(["c"]), vec![vec![42; 10_000]]);
        let varied = Table::from_columns(
            Schema::new(["c"]),
            vec![(0..10_000u32).collect()],
        );
        let small = serialize_table(&constant).len();
        let large = serialize_table(&varied).len();
        assert!(small * 100 < large, "RLE column {small}B vs plain {large}B");
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(deserialize_table(b"oops").is_err());
        let mut bytes = serialize_table(&sample());
        bytes[4] = 99; // bad version
        assert!(deserialize_table(&bytes).is_err());
        let bytes = serialize_table(&sample());
        assert!(deserialize_table(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn store_save_load_cycle() {
        let dir = std::env::temp_dir().join(format!("s2ct-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut store = TableStore::open(&dir).unwrap();
            store.save("VP/follows", &sample()).unwrap();
            store.save("ExtVP_OS/follows|likes", &sample()).unwrap();
            assert_eq!(store.len(), 2);
            assert!(store.file_size("VP/follows").unwrap() > 0);
            assert!(store.total_size().unwrap() > 0);
        }
        {
            // Re-open and read back.
            let mut store = TableStore::open(&dir).unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(store.load("ExtVP_OS/follows|likes").unwrap(), sample());
            store.remove("VP/follows").unwrap();
            assert!(!store.contains("VP/follows"));
            assert!(store.load("VP/follows").is_err());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_without_leaking_files() {
        let dir = std::env::temp_dir().join(format!("s2ct-replace-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = TableStore::open(&dir).unwrap();
        store.save("t", &sample()).unwrap();
        let before = store.file_size("t").unwrap();
        let bigger = Table::from_columns(Schema::new(["s", "o"]), vec![(0..999).collect(), (0..999).collect()]);
        store.save("t", &bigger).unwrap();
        assert!(store.file_size("t").unwrap() > before);
        assert_eq!(store.len(), 1);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 2); // table + manifest
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn prop_serialize_roundtrip(rows in proptest::collection::vec((any::<u32>(), 0u32..50), 0..200)) {
            let cols = vec![
                rows.iter().map(|r| r.0).collect::<Vec<_>>(),
                rows.iter().map(|r| r.1).collect::<Vec<_>>(),
            ];
            let t = Table::from_columns(Schema::new(["a", "b"]), cols);
            let back = deserialize_table(&serialize_table(&t)).unwrap();
            prop_assert_eq!(back, t);
        }
    }
}
