//! Persistent work-stealing worker pool for morsel-driven execution.
//!
//! Before this module every parallel join spawned fresh scoped threads and
//! tore them down again — operator-at-a-time fan-out, paying thread spawn
//! and join latency per operator. The [`WorkerPool`] is the morsel-driven
//! replacement: a process-wide set of workers created **once** (sized by the
//! cgroup-aware [`crate::exec::default_parallelism`] probe, so
//! `S2RDF_THREADS` is honored), with one deque per worker, task stealing
//! between them, and graceful shutdown. Joins, pipelines and AQE re-splits
//! all submit batches of morsel-sized tasks to the same pool, so a query
//! touches the thread machinery zero times after startup — the same reason
//! Spark reuses executor JVMs across stages instead of forking per stage.
//!
//! Execution model of [`WorkerPool::run`]:
//!
//! * Tasks are distributed round-robin over the per-worker deques; each
//!   worker pops its own queue front-first and steals from the *back* of
//!   other queues when its own runs dry (classic work stealing — stolen
//!   tasks are the coldest ones).
//! * The **caller participates**: while its batch is in flight it executes
//!   queued tasks like any worker instead of blocking, so `run` makes
//!   progress even on a 1-core box, under pool shutdown, or when every
//!   worker is busy with another query's batch.
//! * Borrowed closures are safe: `run` does not return until every task of
//!   the batch has completed (a per-batch completion latch), so tasks may
//!   capture `&'env` references even though the worker threads outlive the
//!   call. Task panics are caught, the batch still drains, and the first
//!   panic payload is re-raised on the caller.
//! * A pool built with `workers <= 1` spawns **no threads** and runs every
//!   batch inline on the caller, in submission order — the exact serial
//!   execution `S2RDF_THREADS=1` promises.
//!
//! Always-on stats (plain relaxed atomics — reading them is one load each)
//! feed `Explain`/`--profile`: tasks executed, steals, the high-water queue
//! depth, and per-worker busy microseconds. When the metrics registry is
//! enabled they are mirrored as `columnar.pool.{workers,tasks,steals,
//! queue_depth}`.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use crate::{metric_counter, metric_gauge};

/// A lifetime-erased task. The `usize` argument is the executing worker's
/// slot (the caller helps under the last slot).
type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// One deque per worker slot (including the caller-helper slot).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet taken from any queue.
    pending: AtomicUsize,
    /// Pairs with `wake`: workers re-check `pending`/`shutdown` under this
    /// lock before parking, and pushers notify under it, so wakeups cannot
    /// be lost between the check and the wait.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    // Always-on stats.
    tasks: AtomicU64,
    steals: AtomicU64,
    max_queue_depth: AtomicU64,
    busy_micros: Vec<AtomicU64>,
}

impl Shared {
    /// Takes one job, preferring `home`'s queue front and stealing from the
    /// back of the others. Returns the job and whether it was stolen.
    fn take(&self, home: usize) -> Option<(Job, bool)> {
        if let Some(job) = self.queues[home].lock().unwrap().pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some((job, false));
        }
        let n = self.queues.len();
        for d in 1..n {
            let victim = (home + d) % n;
            if let Some(job) = self.queues[victim].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some((job, true));
            }
        }
        None
    }

    /// Runs one taken job under the busy/steal/task accounting.
    fn execute(&self, job: Job, slot: usize, stolen: bool) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        metric_counter!("columnar.pool.tasks").inc();
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
            metric_counter!("columnar.pool.steals").inc();
        }
        let started = Instant::now();
        job(slot);
        self.busy_micros[slot].fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
}

/// Completion latch for one [`WorkerPool::run`] batch.
struct Batch {
    remaining: AtomicUsize,
    done: Mutex<bool>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn task_finished(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock().unwrap();
            *done = true;
            self.cv.notify_all();
        }
    }
}

/// Sendable pointer to one task's result slot. Slots are disjoint per task
/// and the batch latch guarantees all writes complete before `run` reads
/// them back.
struct SendPtr<T>(*mut Option<T>);
unsafe impl<T: Send> Send for SendPtr<T> {}

/// Point-in-time snapshot of a pool's activity counters (monotonic except
/// `workers`; diff two snapshots to attribute activity to one query).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Cached parallelism the pool was built with — probed exactly once at
    /// construction, never re-probed on hot paths.
    pub workers: usize,
    /// Tasks executed (morsels, partitions, write chunks — one per `run`
    /// task).
    pub tasks: u64,
    /// Tasks taken from another worker's queue.
    pub steals: u64,
    /// High-water mark of any single queue's depth at push time.
    pub max_queue_depth: u64,
    /// Busy microseconds per worker slot; the last slot is the
    /// caller-helper.
    pub busy_micros: Vec<u64>,
}

impl PoolStats {
    /// Total busy time across all worker slots.
    pub fn total_busy_micros(&self) -> u64 {
        self.busy_micros.iter().sum()
    }
}

/// A persistent work-stealing thread pool. See the module docs for the
/// execution model.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Round-robin start offset so consecutive small batches spread across
    /// different queues.
    rr: AtomicUsize,
}

impl WorkerPool {
    /// Builds a pool with `workers` execution slots. `workers - 1` threads
    /// are spawned — the caller of [`WorkerPool::run`] is the remaining
    /// slot — so `workers <= 1` spawns nothing and executes inline.
    pub fn with_workers(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            busy_micros: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        metric_gauge!("columnar.pool.workers").set(workers as u64);
        let handles = (0..workers.saturating_sub(1))
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("s2rdf-worker-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            handles: Mutex::new(handles),
            rr: AtomicUsize::new(0),
        }
    }

    /// The cached parallelism (number of execution slots). This is the
    /// once-probed value hot paths should use instead of re-calling
    /// [`crate::exec::default_parallelism`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers,
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            busy_micros: self
                .shared
                .busy_micros
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Executes every task and returns their results in task order. Tasks
    /// may borrow from the caller's stack: `run` only returns once the
    /// whole batch has completed. If any task panicked, the first payload
    /// is re-raised here after the batch drains.
    pub fn run<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce(usize) -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let helper = self.workers - 1;
        // Serial pool, trivial batch, or post-shutdown: run inline in
        // submission order (still counted as pool tasks).
        if self.workers <= 1 || n == 1 || self.shared.shutdown.load(Ordering::Acquire) {
            return tasks
                .into_iter()
                .map(|f| {
                    self.shared.tasks.fetch_add(1, Ordering::Relaxed);
                    metric_counter!("columnar.pool.tasks").inc();
                    let started = Instant::now();
                    let out = f(helper);
                    self.shared.busy_micros[helper]
                        .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                    out
                })
                .collect();
        }

        let batch = Arc::new(Batch {
            remaining: AtomicUsize::new(n),
            done: Mutex::new(false),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();

        // Wrap each task: run under catch_unwind, write its disjoint result
        // slot, tick the latch. Then erase the borrow lifetime — sound
        // because this function blocks on the latch before touching
        // `results` or returning.
        let jobs: Vec<Job> = tasks
            .into_iter()
            .zip(results.iter_mut())
            .map(|(f, slot)| {
                let slot = SendPtr(slot as *mut Option<T>);
                let batch = Arc::clone(&batch);
                let job: Box<dyn FnOnce(usize) + Send + 'env> = Box::new(move |wid| {
                    let slot = slot;
                    match panic::catch_unwind(AssertUnwindSafe(|| f(wid))) {
                        Ok(v) => unsafe { *slot.0 = Some(v) },
                        Err(p) => {
                            let mut first = batch.panic.lock().unwrap();
                            if first.is_none() {
                                *first = Some(p);
                            }
                        }
                    }
                    batch.task_finished();
                });
                // SAFETY: only the trait object's lifetime bound changes;
                // the latch wait below outlives every job execution.
                unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce(usize) + Send + 'env>,
                        Box<dyn FnOnce(usize) + Send + 'static>,
                    >(job)
                }
            })
            .collect();

        // Distribute round-robin, then wake everyone. `pending` is raised
        // *before* each push so it is always an upper bound on queued jobs
        // and the matching decrement in `take` can never underflow.
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        for (i, job) in jobs.into_iter().enumerate() {
            let q = (start + i) % self.workers;
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            let mut queue = self.shared.queues[q].lock().unwrap();
            queue.push_back(job);
            let depth = queue.len() as u64;
            drop(queue);
            self.shared
                .max_queue_depth
                .fetch_max(depth, Ordering::Relaxed);
            metric_gauge!("columnar.pool.queue_depth").set_max(depth);
        }
        {
            let _g = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }

        // Work-help until our batch completes. Helping may execute tasks
        // of *other* in-flight batches — that is work conservation, not a
        // bug; their own latches account for them.
        loop {
            if *batch.done.lock().unwrap() {
                break;
            }
            if let Some((job, _)) = self.shared.take(helper) {
                self.shared.tasks.fetch_add(1, Ordering::Relaxed);
                metric_counter!("columnar.pool.tasks").inc();
                let started = Instant::now();
                job(helper);
                self.shared.busy_micros[helper]
                    .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
            } else {
                let mut done = batch.done.lock().unwrap();
                while !*done {
                    done = batch.cv.wait(done).unwrap();
                }
                break;
            }
        }

        if let Some(p) = batch.panic.lock().unwrap().take() {
            panic::resume_unwind(p);
        }
        results
            .into_iter()
            .map(|r| r.expect("pool task completed without a result"))
            .collect()
    }

    /// Stops the workers and joins them. Idempotent: a second call (or a
    /// call racing `Drop`) is a no-op, and [`WorkerPool::run`] keeps
    /// working afterwards by executing inline on the caller.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    loop {
        if let Some((job, stolen)) = shared.take(id) {
            shared.execute(job, id, stolen);
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        // Drain before exiting: pending jobs must still run on shutdown so
        // in-flight `run` latches always release.
        if shared.pending.load(Ordering::Acquire) > 0 {
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let _g = shared.wake.wait(guard).unwrap();
    }
}

/// The process-wide pool, built on first use with
/// [`crate::exec::default_parallelism`] slots (so `S2RDF_THREADS` and the
/// cgroup quota are honored) — the probe runs exactly once, here.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::with_workers(crate::exec::default_parallelism()))
}

thread_local! {
    static OVERRIDE: std::cell::Cell<Option<&'static WorkerPool>> =
        const { std::cell::Cell::new(None) };
}

/// The pool execution paths should submit to: the thread's override if one
/// is active (tests pinning a specific pool size), else the global pool.
pub fn current() -> &'static WorkerPool {
    OVERRIDE.with(|c| c.get()).unwrap_or_else(global)
}

/// Runs `f` with every [`current`] call on this thread resolving to `pool`
/// — how tests and benches pin execution to a specific pool (e.g. a leaked
/// 1-worker pool to prove serial equivalence). Restores the previous
/// override on exit, including across panics.
pub fn with_pool<R>(pool: &'static WorkerPool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<&'static WorkerPool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(pool))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_returns_results_in_task_order() {
        let pool = WorkerPool::with_workers(4);
        let out = pool.run((0..100).map(|i| move |_w: usize| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.stats().tasks, 100);
    }

    #[test]
    fn borrowed_captures_are_sound() {
        let pool = WorkerPool::with_workers(3);
        let data: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = data.chunks(97).collect();
        let sums = pool.run(
            chunks
                .iter()
                .map(|&c| move |_w: usize| c.iter().sum::<u64>())
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let pool = WorkerPool::with_workers(1);
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        let ids = pool.run(
            (0..16)
                .map(|i| {
                    let order = &order;
                    move |_w: usize| {
                        order.lock().unwrap().push(i);
                        std::thread::current().id()
                    }
                })
                .collect(),
        );
        assert!(ids.iter().all(|&id| id == caller));
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::with_workers(2);
        let out: Vec<u32> = pool.run(Vec::<fn(usize) -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::with_workers(3);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..8)
                    .map(|i| {
                        move |_w: usize| {
                            if i == 5 {
                                panic!("task 5 exploded");
                            }
                            i
                        }
                    })
                    .collect(),
            )
        }));
        assert!(r.is_err());
        // The pool is still healthy.
        let out = pool.run((0..8).map(|i| move |_w: usize| i + 1).collect());
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn shutdown_is_idempotent_and_inline_after() {
        let pool = WorkerPool::with_workers(4);
        let counter = AtomicUsize::new(0);
        pool.run(
            (0..32)
                .map(|_| {
                    let counter = &counter;
                    move |_w: usize| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .collect(),
        );
        pool.shutdown();
        pool.shutdown();
        // Still usable: inline execution.
        pool.run(
            (0..8)
                .map(|_| {
                    let counter = &counter;
                    move |_w: usize| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .collect(),
        );
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn override_scopes_and_restores() {
        static OUTER: OnceLock<WorkerPool> = OnceLock::new();
        let outer = OUTER.get_or_init(|| WorkerPool::with_workers(1));
        assert_eq!(current().workers(), global().workers());
        with_pool(outer, || {
            assert_eq!(current().workers(), 1);
        });
        assert_eq!(current().workers(), global().workers());
    }
}
