//! Data-parallel execution: adaptive join planning over three strategies.
//!
//! Spark executes joins by shuffling both inputs into hash partitions and
//! joining partitions in parallel across the cluster, each task writing its
//! own shuffle partition of the output — the results are never reassembled
//! into one buffer. This module is the shared-memory analogue, and since the
//! adaptive-execution PR it mirrors Spark's *strategy selection* too: like
//! Spark choosing broadcast-hash vs shuffle-hash joins from statistics (and
//! re-partitioning at runtime under AQE), [`natural_join_adaptive`] picks
//! per join between
//!
//! 1. the **serial** hash join (small probe sides — Spark's "little setup
//!    overhead" property the paper's pre-evaluation leans on, §5),
//! 2. a **broadcast-hash join** ([`broadcast_natural_join`]): when the build
//!    side fits under a byte/row threshold, one shared hash index replaces
//!    the whole partitioning machinery and workers probe contiguous probe
//!    chunks — Spark's `autoBroadcastJoinThreshold` analogue, and
//! 3. the **partitioned** hash join ([`par_natural_join`]) with a partition
//!    count derived from probe cardinality and core count instead of a
//!    fixed constant.
//!
//! Every choice is returned as a [`JoinDecision`] so engines can surface it
//! through `Explain`, and counted in the metrics registry
//! (`columnar.join.{broadcast_joins,adaptive_partitions,resplits}`).
//!
//! The partitioned path keeps the partition-native property: pass 1 collects
//! the exact matching row pairs per partition, a prefix sum turns the pair
//! counts into disjoint output ranges, and pass 2 writes every partition's
//! rows directly into one pre-sized output table through non-overlapping
//! column slices (`columnar.concat.bytes_copied` stays 0).
//!
//! Since the morsel-driven executor PR, **no join spawns threads**: every
//! parallel stage — broadcast probe morsels, pass-1 partition tasks, pass-2
//! write chunks — is submitted to the persistent work-stealing
//! [`crate::pool::WorkerPool`], and probe sides are cut into
//! [`JoinConfig::morsel_rows`]-sized morsels rather than one monolithic
//! chunk per thread, so stragglers are absorbed by stealing instead of
//! re-spawning.
//!
//! Skew: every row of one key hashes to one partition, so a hot key makes a
//! straggler no matter how many threads run — the PRoST / Naacke et al.
//! observation that partitioning strategy, not operator tuning, dominates
//! SPARQL latency on Spark-style engines. Two mitigations stack:
//!
//! * **Hot-key broadcast** — when the pre-split histogram shows a partition
//!   above [`SKEW_TRIGGER_PCT`], keys with frequency above the ideal
//!   partition size on *either* side are pulled out: their build rows go
//!   into a broadcast index shared by all partitions and their probe rows
//!   are dealt round-robin.
//! * **Runtime re-partitioning** — if the post-split `straggler_pct` still
//!   exceeds [`JoinConfig::resplit_straggler_pct`] (skew spread over many
//!   *distinct* keys that happen to co-hash, which no per-key cut can fix),
//!   the straggler partition itself is dissolved: its build rows join the
//!   broadcast index and its probe rows are dealt round-robin — Spark AQE's
//!   `OptimizeSkewedJoin` splitting an oversized shuffle partition.
//!
//! Gauges `columnar.par_join.presplit_skew_pct` (before mitigation),
//! `columnar.par_join.max_skew_pct` (after), and
//! `columnar.par_join.straggler_pct` (largest ÷ median load) make the
//! effect observable.

use std::cmp::Ordering;
use std::fmt;

use rustc_hash::{FxHashMap, FxHashSet};

use crate::metrics::SpanTimer;
use crate::ops;
use crate::schema::Schema;
use crate::table::Table;
use crate::{metric_counter, metric_gauge, metric_histogram};

/// Probe-side row count below which partitioning is not worth the setup.
pub const PARALLEL_ROW_THRESHOLD: usize = 1 << 15;

/// Pre-split skew percentage (largest partition × parts ÷ total rows; 100 =
/// perfectly balanced) above which hot-key mitigation kicks in.
pub const SKEW_TRIGGER_PCT: usize = 130;

/// Tunable thresholds for adaptive join-strategy selection
/// ([`natural_join_adaptive`]). The defaults mirror Spark's:
/// `broadcast_bytes` plays `spark.sql.autoBroadcastJoinThreshold`,
/// `target_partition_rows` plays AQE's `advisoryPartitionSizeInBytes`, and
/// `resplit_straggler_pct` plays `skewedPartitionThresholdInBytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinConfig {
    /// Probe-side row count below which the serial join runs (partitioning
    /// and broadcasting are pure overhead there).
    pub serial_row_threshold: usize,
    /// Build sides with at most this many rows take the broadcast path.
    /// `0` disables broadcasting by rows; `usize::MAX` forces it.
    pub broadcast_rows: usize,
    /// Build sides of at most this many payload bytes take the broadcast
    /// path (either bound suffices). `0` disables broadcasting by bytes.
    pub broadcast_bytes: usize,
    /// Target probe rows per partition; the partition count is
    /// `probe_rows / target_partition_rows`, clamped to
    /// `[2, max_partitions]`.
    pub target_partition_rows: usize,
    /// Upper bound on the partition count. `0` means
    /// [`default_parallelism`] (all cores).
    pub max_partitions: usize,
    /// `straggler_pct` bound (largest ÷ median partition load × 100) above
    /// which the straggler partition is re-split at runtime.
    pub resplit_straggler_pct: usize,
    /// Maximum partition re-splits per join (a convergence backstop).
    pub max_resplits: usize,
    /// Rows per morsel — the unit of work submitted to the worker pool by
    /// probe scans, fused pipelines and output writes. Smaller morsels
    /// steal better under skew; larger ones amortize task overhead
    /// (CLI `--morsel-rows`).
    pub morsel_rows: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            serial_row_threshold: PARALLEL_ROW_THRESHOLD,
            broadcast_rows: 1 << 13,
            broadcast_bytes: 256 << 10,
            target_partition_rows: 1 << 14,
            max_partitions: 0,
            resplit_straggler_pct: 150,
            max_resplits: 4,
            morsel_rows: 1 << 14,
        }
    }
}

/// The join strategy an adaptive decision picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Single-threaded hash join (small probe side).
    Serial,
    /// Broadcast-hash join: one shared build index, chunked parallel probe.
    Broadcast,
    /// Partitioned (shuffle-style) hash join.
    Partitioned,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinStrategy::Serial => "serial",
            JoinStrategy::Broadcast => "broadcast",
            JoinStrategy::Partitioned => "partitioned",
        })
    }
}

/// Which input of a join was chosen as the build side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    /// The left operand was built on.
    Left,
    /// The right operand was built on.
    Right,
}

impl fmt::Display for BuildSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BuildSide::Left => "left",
            BuildSide::Right => "right",
        })
    }
}

/// The auditable record of one adaptive join: which strategy ran, which
/// side was built on (chosen by cardinality, not position), how many
/// partitions were used and how many were re-split at runtime. Engines
/// thread this into `Explain` so `query --profile` can show the policy.
#[derive(Debug, Clone, Copy)]
pub struct JoinDecision {
    /// Strategy that executed.
    pub strategy: JoinStrategy,
    /// Build side, chosen by smaller cardinality.
    pub build_side: BuildSide,
    /// Worker partitions used (1 for the serial path).
    pub partitions: usize,
    /// Straggler partitions dissolved by runtime re-partitioning.
    pub resplits: usize,
    /// Build-side input rows.
    pub build_rows: usize,
    /// Probe-side input rows.
    pub probe_rows: usize,
    /// Output rows.
    pub out_rows: usize,
}

impl JoinDecision {
    /// One-line human-readable form for Explain/trace output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} build={}({} rows) probe={} rows parts={}",
            self.strategy, self.build_side, self.build_rows, self.probe_rows, self.partitions
        );
        if self.resplits > 0 {
            s.push_str(&format!(" resplits={}", self.resplits));
        }
        s
    }
}

/// Fibonacci-hash a key value into one of `parts` partitions.
#[inline]
fn partition_of(key: u64, parts: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % parts
}

/// Folds a row's join-key columns into a `u64`.
///
/// For one or two key columns the fold is *exact* (injective), so the value
/// doubles as both the partitioning key and the per-partition hash-map key,
/// and hot-key detection can trust it as the key's identity. Wider keys fold
/// lossily — fine for partitioning (a collision merely co-locates two keys),
/// but the per-partition maps then match on the exact `Vec<u32>` key instead
/// and skew mitigation is skipped.
#[inline]
fn fold_key(table: &Table, keys: &[usize], row: usize) -> u64 {
    match keys {
        [k] => table.value(row, *k) as u64,
        [k1, k2] => ((table.value(row, *k1) as u64) << 32) | table.value(row, *k2) as u64,
        _ => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &c in keys {
                h = (h ^ table.value(row, c) as u64).wrapping_mul(0x100_0000_01B3);
            }
            h
        }
    }
}

/// Concatenates tables with identical schemas.
///
/// Each input is appended with one bulk `extend_from_slice` per column
/// (a memcpy), not row-by-row scalar pushes. Since the partition-native
/// rewrite of [`par_natural_join`] this is **no longer on the join path** —
/// partitions write straight into the pre-sized output — so the
/// `columnar.concat.bytes_copied` counter must stay zero across parallel
/// joins (asserted by tests and the PR-3 bench). It remains available for
/// genuine multi-table appends (e.g. UNION-style accumulation).
pub fn concat(schema: Schema, tables: Vec<Table>) -> Table {
    let mut out = Table::empty(schema);
    out.reserve(tables.iter().map(Table::num_rows).sum());
    let mut bytes = 0u64;
    for t in tables {
        debug_assert_eq!(t.schema(), out.schema());
        bytes += out.extend_from_table(&t) as u64;
    }
    metric_counter!("columnar.concat.calls").inc();
    metric_counter!("columnar.concat.bytes_copied").add(bytes);
    out
}

/// How many worker threads to use for parallel joins.
///
/// `std::thread::available_parallelism` respects the process affinity
/// mask, which some container runtimes pin to a single CPU even when the
/// cgroup v2 `cpu.max` quota grants several — leaving parallel joins
/// serial on a multi-core box. The effective count is therefore probed
/// **once** at first use: an explicit `S2RDF_THREADS` value wins, else the
/// larger of the affinity-derived count and the cgroup quota ceiling.
pub fn default_parallelism() -> usize {
    static PROBED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *PROBED.get_or_init(|| {
        probe_parallelism(
            std::env::var("S2RDF_THREADS").ok().as_deref(),
            std::fs::read_to_string("/sys/fs/cgroup/cpu.max")
                .ok()
                .as_deref(),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        )
    })
}

/// Pure probe logic behind [`default_parallelism`], separated for tests:
/// a positive `S2RDF_THREADS`-style override wins outright; otherwise the
/// result is `max(reported, cgroup quota ceiling)`, floored at 1.
pub fn probe_parallelism(
    env_override: Option<&str>,
    cpu_max: Option<&str>,
    reported: usize,
) -> usize {
    if let Some(n) = env_override.and_then(|s| s.trim().parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    let quota = cpu_max.and_then(parse_cpu_max).unwrap_or(0);
    reported.max(quota).max(1)
}

/// Parses a cgroup v2 `cpu.max` file: `"<quota> <period>"` in
/// microseconds, or `"max <period>"` for unlimited (which carries no
/// signal and yields `None`). Returns `ceil(quota / period)`, the number
/// of full CPUs the quota sustains.
pub fn parse_cpu_max(contents: &str) -> Option<usize> {
    let mut fields = contents.split_whitespace();
    let quota = fields.next()?;
    if quota == "max" {
        return None;
    }
    let quota: u64 = quota.parse().ok()?;
    let period: u64 = fields.next()?.parse().ok()?;
    if quota == 0 || period == 0 {
        return None;
    }
    Some(quota.div_ceil(period).max(1) as usize)
}

/// Derives a partition count from probe cardinality and core count
/// (replacing the fixed constant callers used to pass): one partition per
/// [`JoinConfig::target_partition_rows`] probe rows, clamped to the core
/// count (or [`JoinConfig::max_partitions`] when set). Inputs below two
/// targets degrade to 1, i.e. the serial path.
pub fn adaptive_partitions(probe_rows: usize, cfg: &JoinConfig) -> usize {
    let cap = if cfg.max_partitions == 0 {
        // The pool caches the parallelism probe at construction — hot paths
        // read the cached count instead of re-probing env/cgroup state.
        crate::pool::current().workers()
    } else {
        cfg.max_partitions
    };
    (probe_rows / cfg.target_partition_rows.max(1)).clamp(1, cap.max(1))
}

/// Statistics-driven natural join: picks serial, broadcast-hash or
/// partitioned execution per [`JoinConfig`], choosing the build side by
/// cardinality, and returns the executed [`JoinDecision`] alongside the
/// result — the shared-memory analogue of Spark planning broadcast vs
/// shuffle-hash joins from table statistics.
pub fn natural_join_adaptive(
    left: &Table,
    right: &Table,
    cfg: &JoinConfig,
) -> (Table, JoinDecision) {
    let left_is_build = left.num_rows() <= right.num_rows();
    let (build, probe) = if left_is_build {
        (left, right)
    } else {
        (right, left)
    };
    let mut decision = JoinDecision {
        strategy: JoinStrategy::Serial,
        build_side: if left_is_build {
            BuildSide::Left
        } else {
            BuildSide::Right
        },
        partitions: 1,
        resplits: 0,
        build_rows: build.num_rows(),
        probe_rows: probe.num_rows(),
        out_rows: 0,
    };
    let common = left.schema().common_columns(right.schema());
    if common.is_empty()
        || left.is_empty()
        || right.is_empty()
        || probe.num_rows() < cfg.serial_row_threshold
    {
        let out = ops::natural_join(left, right);
        decision.out_rows = out.num_rows();
        return (out, decision);
    }
    if build.num_rows() <= cfg.broadcast_rows || build.byte_size() <= cfg.broadcast_bytes {
        let parts = adaptive_partitions(probe.num_rows(), cfg);
        metric_counter!("columnar.join.broadcast_joins").inc();
        let out = broadcast_join_morsels(left, right, parts, cfg.morsel_rows);
        decision.strategy = JoinStrategy::Broadcast;
        decision.partitions = parts;
        decision.out_rows = out.num_rows();
        return (out, decision);
    }
    let parts = adaptive_partitions(probe.num_rows(), cfg);
    metric_gauge!("columnar.join.adaptive_partitions").set(parts as u64);
    let (out, resplits) = partitioned_natural_join(left, right, parts, cfg);
    decision.strategy = if parts <= 1 {
        JoinStrategy::Serial
    } else {
        JoinStrategy::Partitioned
    };
    decision.partitions = parts.max(1);
    decision.resplits = resplits;
    decision.out_rows = out.num_rows();
    (out, decision)
}

/// A shared build-side index for broadcast joins and fused pipelines:
/// exact `u64` folds for 1–2 key columns, exact `Vec<u32>` keys for wider
/// ones.
pub(crate) enum BcastIndex {
    Narrow(FxHashMap<u64, Vec<u32>>),
    Wide(FxHashMap<Vec<u32>, Vec<u32>>),
}

/// Builds a [`BcastIndex`] over every row of `build`.
pub(crate) fn build_bcast_index(build: &Table, build_keys: &[usize]) -> BcastIndex {
    if build_keys.len() <= 2 {
        let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        map.reserve(build.num_rows());
        for r in 0..build.num_rows() {
            map.entry(fold_key(build, build_keys, r))
                .or_default()
                .push(r as u32);
        }
        BcastIndex::Narrow(map)
    } else {
        let mut map: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
        for r in 0..build.num_rows() {
            let key: Vec<u32> = build_keys.iter().map(|&c| build.value(r, c)).collect();
            map.entry(key).or_default().push(r as u32);
        }
        BcastIndex::Wide(map)
    }
}

/// Probes `rows` of `probe` against a shared [`BcastIndex`], returning
/// match pairs in `(left_row, right_row)` orientation. This is the
/// per-morsel body shared by the broadcast join and the fused
/// filter→probe pipeline ([`crate::pipeline`]).
pub(crate) fn probe_bcast(
    index: &BcastIndex,
    probe: &Table,
    probe_keys: &[usize],
    rows: impl Iterator<Item = usize>,
    left_is_build: bool,
) -> Vec<(u32, u32)> {
    let orient = |b: u32, p: u32| if left_is_build { (b, p) } else { (p, b) };
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    match index {
        BcastIndex::Narrow(map) => {
            for r in rows {
                if let Some(matches) = map.get(&fold_key(probe, probe_keys, r)) {
                    for &b in matches {
                        pairs.push(orient(b, r as u32));
                    }
                }
            }
        }
        BcastIndex::Wide(map) => {
            let mut scratch: Vec<u32> = Vec::new();
            for r in rows {
                scratch.clear();
                scratch.extend(probe_keys.iter().map(|&c| probe.value(r, c)));
                if let Some(matches) = map.get(scratch.as_slice()) {
                    for &b in matches {
                        pairs.push(orient(b, r as u32));
                    }
                }
            }
        }
    }
    pairs
}

/// Broadcast-hash natural join with the default morsel size. See
/// [`broadcast_join_morsels`].
pub fn broadcast_natural_join(left: &Table, right: &Table, parts: usize) -> Table {
    broadcast_join_morsels(left, right, parts, JoinConfig::default().morsel_rows)
}

/// Broadcast-hash natural join: builds one hash index over the *entire*
/// smaller side and probes morsel-sized contiguous chunks of the larger
/// side on the shared worker pool — no hash split of either input, no
/// per-row routing, and (morsels being equal-sized ranges picked up by
/// whichever worker is free) no possibility of probe-side skew. Each
/// morsel's match pairs are written into disjoint slices of one pre-sized
/// output, like the partitioned join's pass 2. Spark's broadcast-hash
/// join, minus the network. `parts` is a lower bound on the task count for
/// small inputs; large probes are cut at `morsel_rows`.
fn broadcast_join_morsels(left: &Table, right: &Table, parts: usize, morsel_rows: usize) -> Table {
    let common = left.schema().common_columns(right.schema());
    if common.is_empty() || left.is_empty() || right.is_empty() {
        return ops::natural_join(left, right);
    }
    let _span = SpanTimer::start(metric_histogram!("columnar.broadcast_join.wall_micros"));
    let left_keys: Vec<usize> = common
        .iter()
        .map(|c| left.schema().index_of(c).unwrap())
        .collect();
    let right_keys: Vec<usize> = common
        .iter()
        .map(|c| right.schema().index_of(c).unwrap())
        .collect();
    let (schema, right_payload) = ops::join_schema(left, right, &right_keys);

    let left_is_build = left.num_rows() <= right.num_rows();
    let (build, probe) = if left_is_build {
        (left, right)
    } else {
        (right, left)
    };
    let (build_keys, probe_keys) = if left_is_build {
        (&left_keys, &right_keys)
    } else {
        (&right_keys, &left_keys)
    };

    metric_counter!("columnar.broadcast_join.calls").inc();
    metric_counter!("columnar.broadcast_join.build_rows").add(build.num_rows() as u64);
    metric_counter!("columnar.broadcast_join.probe_rows").add(probe.num_rows() as u64);

    let index = build_bcast_index(build, build_keys);

    // Contiguous probe morsels: trivially balanced, no routing pass.
    // `parts` floors the task count so small probes still spread; large
    // probes are cut at `morsel_rows` so the pool can steal stragglers.
    let parts = parts.clamp(1, probe.num_rows());
    let chunk = probe
        .num_rows()
        .div_ceil(parts)
        .clamp(1, morsel_rows.max(1));
    let n_morsels = probe.num_rows().div_ceil(chunk);
    metric_counter!("columnar.pool.morsels").add(n_morsels as u64);
    let tasks: Vec<_> = (0..n_morsels)
        .map(|m| {
            let (index, probe_keys) = (&index, probe_keys);
            let range = m * chunk..((m + 1) * chunk).min(probe.num_rows());
            move |_worker: usize| probe_bcast(index, probe, probe_keys, range, left_is_build)
        })
        .collect();
    let pair_lists = crate::pool::current().run(tasks);
    let out = write_pairs(
        schema,
        left,
        right,
        &right_payload,
        &pair_lists,
        morsel_rows,
    );
    metric_counter!("columnar.broadcast_join.out_rows").add(out.num_rows() as u64);
    out
}

/// Collects the exact matching `(left_row, right_row)` pairs of one
/// partition: a hash join over the partition's build rows probed by its
/// probe rows, plus the partition's share of hot probe rows matched against
/// the shared broadcast index.
#[allow(clippy::too_many_arguments)]
fn collect_pairs(
    build: &Table,
    probe: &Table,
    build_keys: &[usize],
    probe_keys: &[usize],
    build_rows: &[u32],
    probe_rows: &[u32],
    hot_probe_rows: &[u32],
    build_hash: &[u64],
    probe_hash: &[u64],
    bcast: &FxHashMap<u64, Vec<u32>>,
    left_is_build: bool,
) -> Vec<(u32, u32)> {
    let orient = |b: u32, p: u32| if left_is_build { (b, p) } else { (p, b) };
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if build_keys.len() <= 2 {
        // Exact u64 keys: the fold is injective for 1–2 columns.
        let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        index.reserve(build_rows.len());
        for &r in build_rows {
            index.entry(build_hash[r as usize]).or_default().push(r);
        }
        for &r in probe_rows {
            if let Some(matches) = index.get(&probe_hash[r as usize]) {
                for &b in matches {
                    pairs.push(orient(b, r));
                }
            }
        }
    } else {
        // Wide keys: partitioned by the lossy fold, matched on exact values.
        let mut index: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
        for &r in build_rows {
            let key: Vec<u32> = build_keys
                .iter()
                .map(|&c| build.value(r as usize, c))
                .collect();
            index.entry(key).or_default().push(r);
        }
        let mut scratch: Vec<u32> = Vec::new();
        for &r in probe_rows {
            scratch.clear();
            scratch.extend(probe_keys.iter().map(|&c| probe.value(r as usize, c)));
            if let Some(matches) = index.get(scratch.as_slice()) {
                for &b in matches {
                    pairs.push(orient(b, r));
                }
            }
        }
    }
    // Hot probe rows match only through the broadcast index: every build row
    // of a hot key was excluded from the hashed partitions, so each
    // (probe, build) pair is produced exactly once.
    for &r in hot_probe_rows {
        if let Some(matches) = bcast.get(&probe_hash[r as usize]) {
            for &b in matches {
                pairs.push(orient(b, r));
            }
        }
    }
    pairs
}

/// Pass 2 of the partition-native joins — the late-materialization sink.
/// Payload columns are only touched here: every pair list is cut into
/// `morsel_rows` chunks, each chunk owns disjoint slices of one pre-sized
/// output table (chained `split_at_mut`), and the chunks gather on the
/// worker pool — zero reassembly, zero `concat` bytes. Pairs are in
/// `(left_row, right_row)` orientation.
pub(crate) fn write_pairs(
    schema: Schema,
    left: &Table,
    right: &Table,
    right_payload: &[usize],
    pair_lists: &[Vec<(u32, u32)>],
    morsel_rows: usize,
) -> Table {
    let total: usize = pair_lists.iter().map(Vec::len).sum();
    let ncols = schema.len();
    let left_ncols = left.schema().len();
    let mut cols: Vec<Vec<u32>> = (0..ncols).map(|_| vec![0u32; total]).collect();
    let chunks: Vec<&[(u32, u32)]> = pair_lists
        .iter()
        .flat_map(|p| p.chunks(morsel_rows.max(1)))
        .collect();
    let mut per_chunk: Vec<Vec<&mut [u32]>> =
        chunks.iter().map(|_| Vec::with_capacity(ncols)).collect();
    for col in &mut cols {
        let mut rest: &mut [u32] = col.as_mut_slice();
        for (t, chunk) in chunks.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(chunk.len());
            per_chunk[t].push(head);
            rest = tail;
        }
    }
    metric_counter!("columnar.pool.morsels").add(chunks.len() as u64);
    let tasks: Vec<_> = per_chunk
        .into_iter()
        .zip(&chunks)
        .map(|(slices, &pairs)| {
            move |_worker: usize| {
                for (c, out_col) in slices.into_iter().enumerate() {
                    if c < left_ncols {
                        let src = left.column(c);
                        for (j, &(lr, _)) in pairs.iter().enumerate() {
                            out_col[j] = src[lr as usize];
                        }
                    } else {
                        let src = right.column(right_payload[c - left_ncols]);
                        for (j, &(_, rr)) in pairs.iter().enumerate() {
                            out_col[j] = src[rr as usize];
                        }
                    }
                }
            }
        })
        .collect();
    crate::pool::current().run(tasks);
    Table::from_columns(schema, cols)
}

/// Natural join that partitions both sides by join-key hash, collects match
/// pairs as worker-pool tasks, and writes each partition's output directly into
/// disjoint slices of one pre-sized result table (no reassembly copy). Row
/// order of the result is partition-major (a permutation of the serial
/// join's bag). Hot keys are broadcast when the hash split would produce a
/// straggler partition, and a partition that is still a straggler after
/// hot-key mitigation is re-split at runtime (default [`JoinConfig`]
/// bounds).
pub fn par_natural_join(left: &Table, right: &Table, parts: usize) -> Table {
    partitioned_natural_join(left, right, parts, &JoinConfig::default()).0
}

/// [`par_natural_join`] with explicit re-split bounds; returns the number
/// of straggler partitions dissolved by runtime re-partitioning.
pub fn partitioned_natural_join(
    left: &Table,
    right: &Table,
    parts: usize,
    cfg: &JoinConfig,
) -> (Table, usize) {
    let common = left.schema().common_columns(right.schema());
    if common.is_empty() || parts <= 1 || left.is_empty() || right.is_empty() {
        return (ops::natural_join(left, right), 0);
    }
    let _span = SpanTimer::start(metric_histogram!("columnar.par_join.wall_micros"));
    let left_keys: Vec<usize> = common
        .iter()
        .map(|c| left.schema().index_of(c).unwrap())
        .collect();
    let right_keys: Vec<usize> = common
        .iter()
        .map(|c| right.schema().index_of(c).unwrap())
        .collect();
    let (schema, right_payload) = ops::join_schema(left, right, &right_keys);

    // Build on the smaller side, probe with the larger.
    let left_is_build = left.num_rows() <= right.num_rows();
    let (build, probe) = if left_is_build {
        (left, right)
    } else {
        (right, left)
    };
    let (build_keys, probe_keys) = if left_is_build {
        (&left_keys, &right_keys)
    } else {
        (&right_keys, &left_keys)
    };
    let narrow = build_keys.len() <= 2;

    metric_counter!("columnar.par_join.calls").inc();
    metric_counter!("columnar.par_join.partitions").add(parts as u64);
    metric_counter!("columnar.par_join.build_rows").add(build.num_rows() as u64);
    metric_counter!("columnar.par_join.probe_rows").add(probe.num_rows() as u64);

    let build_hash: Vec<u64> = (0..build.num_rows())
        .map(|r| fold_key(build, build_keys, r))
        .collect();
    let probe_hash: Vec<u64> = (0..probe.num_rows())
        .map(|r| fold_key(probe, probe_keys, r))
        .collect();

    // Pre-split histogram: the partition loads a pure hash split would get.
    let presplit = |hashes: &[u64]| -> usize {
        let mut counts = vec![0usize; parts];
        for &h in hashes {
            counts[partition_of(h, parts)] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    };
    let presplit_pct = (presplit(&probe_hash) * parts * 100 / probe.num_rows())
        .max(presplit(&build_hash) * parts * 100 / build.num_rows());
    metric_gauge!("columnar.par_join.presplit_skew_pct").set_max(presplit_pct as u64);

    // Hot keys: frequency above the ideal partition size on either side.
    // The probe-side histogram catches classic probe stragglers; the
    // build-side histogram catches high-multiplicity build keys whose
    // *output* would explode one partition.
    let probe_ideal = (probe.num_rows() / parts).max(1);
    let build_ideal = (build.num_rows() / parts).max(1);
    let hot: FxHashSet<u64> = if narrow && presplit_pct > SKEW_TRIGGER_PCT {
        let mut freq: FxHashMap<u64, usize> = FxHashMap::default();
        for &k in &probe_hash {
            *freq.entry(k).or_default() += 1;
        }
        let mut hot: FxHashSet<u64> = freq
            .iter()
            .filter(|&(_, &c)| c > probe_ideal)
            .map(|(&k, _)| k)
            .collect();
        freq.clear();
        for &k in &build_hash {
            *freq.entry(k).or_default() += 1;
        }
        hot.extend(
            freq.iter()
                .filter(|&(_, &c)| c > build_ideal)
                .map(|(&k, _)| k),
        );
        hot
    } else {
        FxHashSet::default()
    };
    metric_counter!("columnar.par_join.hot_keys").add(hot.len() as u64);

    // Split rows (by index — no gather copies): hot build rows go to the
    // broadcast list, hot probe rows are dealt round-robin, the rest hash.
    let mut build_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
    let mut bcast_rows: Vec<u32> = Vec::new();
    for (r, &k) in build_hash.iter().enumerate() {
        if hot.contains(&k) {
            bcast_rows.push(r as u32);
        } else {
            build_parts[partition_of(k, parts)].push(r as u32);
        }
    }
    let mut probe_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
    let mut hot_probe_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
    let mut deal = 0usize;
    for (r, &k) in probe_hash.iter().enumerate() {
        if hot.contains(&k) {
            hot_probe_parts[deal % parts].push(r as u32);
            deal += 1;
        } else {
            probe_parts[partition_of(k, parts)].push(r as u32);
        }
    }

    // AQE-style runtime re-partitioning: hot-key broadcasting cannot fix a
    // straggler made of many *distinct* keys that co-hash (each under the
    // per-key threshold). If the post-split straggler bound is still
    // exceeded, dissolve the largest partition: its build rows join the
    // broadcast index and its probe rows are dealt round-robin — each
    // (probe, build) pair still produced exactly once because a build row
    // lives in exactly one partition or the broadcast list.
    let mut resplits = 0usize;
    if narrow && cfg.max_resplits > 0 {
        loop {
            let loads: Vec<usize> = (0..parts)
                .map(|p| probe_parts[p].len() + hot_probe_parts[p].len())
                .collect();
            let (worst, &largest) = loads
                .iter()
                .enumerate()
                .max_by_key(|&(_, l)| *l)
                .expect("parts >= 1");
            let mut sorted = loads.clone();
            sorted.sort_unstable();
            let median = sorted[parts / 2].max(1);
            if largest * 100 / median <= cfg.resplit_straggler_pct
                || resplits >= cfg.max_resplits
                || probe_parts[worst].is_empty()
            {
                break;
            }
            for r in std::mem::take(&mut build_parts[worst]) {
                bcast_rows.push(r);
            }
            for r in std::mem::take(&mut probe_parts[worst]) {
                hot_probe_parts[deal % parts].push(r);
                deal += 1;
            }
            resplits += 1;
        }
    }
    metric_counter!("columnar.join.resplits").add(resplits as u64);
    metric_counter!("columnar.par_join.broadcast_rows").add(bcast_rows.len() as u64);

    let mut bcast_index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for &r in &bcast_rows {
        bcast_index
            .entry(build_hash[r as usize])
            .or_default()
            .push(r);
    }

    // Post-mitigation probe load per partition — what the skew-join
    // microbench asserts on (straggler ≤ 1.5× median).
    let mut loads: Vec<usize> = (0..parts)
        .map(|p| probe_parts[p].len() + hot_probe_parts[p].len())
        .collect();
    let largest = loads.iter().copied().max().unwrap_or(0);
    metric_gauge!("columnar.par_join.max_skew_pct")
        .set_max((largest * parts * 100 / probe.num_rows()) as u64);
    loads.sort_unstable();
    let median = loads[parts / 2].max(1);
    metric_gauge!("columnar.par_join.straggler_pct").set_max((largest * 100 / median) as u64);

    // Pass 1: per-partition exact match-pair collection as pool tasks —
    // partitions are already near `target_partition_rows` granularity, and
    // work stealing (plus the re-split above) absorbs residual imbalance.
    // Pairs are stored in (left_row, right_row) orientation so pass 2 is
    // orientation-free.
    let tasks: Vec<_> = (0..parts)
        .map(|p| {
            let (build_rows, probe_rows, hot_rows) =
                (&build_parts[p], &probe_parts[p], &hot_probe_parts[p]);
            let (build_hash, probe_hash, bcast) = (&build_hash, &probe_hash, &bcast_index);
            move |_worker: usize| {
                collect_pairs(
                    build,
                    probe,
                    build_keys,
                    probe_keys,
                    build_rows,
                    probe_rows,
                    hot_rows,
                    build_hash,
                    probe_hash,
                    bcast,
                    left_is_build,
                )
            }
        })
        .collect();
    let pair_lists = crate::pool::current().run(tasks);

    // Exact output size is now known; pass 2 pre-sizes the result once and
    // writes disjoint slices.
    let total: usize = pair_lists.iter().map(Vec::len).sum();
    metric_counter!("columnar.par_join.out_rows").add(total as u64);
    (
        write_pairs(
            schema,
            left,
            right,
            &right_payload,
            &pair_lists,
            cfg.morsel_rows,
        ),
        resplits,
    )
}

/// Chooses between the serial, broadcast and partitioned join based on
/// input statistics (default [`JoinConfig`] thresholds), discarding the
/// decision record. Engines that surface decisions call
/// [`natural_join_adaptive`] directly.
pub fn natural_join_auto(left: &Table, right: &Table) -> Table {
    natural_join_adaptive(left, right, &JoinConfig::default()).0
}

/// Canonical multiset form of a table's rows (sorted row vectors) — used by
/// tests and by engine-equivalence checks, where row order is unspecified.
pub fn row_multiset(table: &Table) -> Vec<Vec<u32>> {
    let mut rows: Vec<Vec<u32>> = (0..table.num_rows()).map(|i| table.row_vec(i)).collect();
    rows.sort_unstable_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(schema: &[&str], rows: &[Vec<u32>]) -> Table {
        Table::from_rows(Schema::new(schema.iter().map(|s| s.to_string())), rows)
    }

    fn random_table(schema: &[&str], n: usize, card: u32, seed: u64) -> Table {
        // Tiny deterministic LCG; avoids a dev-dependency in unit tests.
        let mut state = seed.wrapping_add(0x853c49e6748fea9b);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % card
        };
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..schema.len()).map(|_| next()).collect())
            .collect();
        table(schema, &rows)
    }

    /// A probe side where `skew_pct`% of rows share one hot key.
    fn skewed_table(schema: &[&str], n: usize, hot_key: u32, skew_pct: usize, seed: u64) -> Table {
        let base = random_table(schema, n, 97, seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut row = base.row_vec(i);
                if i * 100 / n < skew_pct {
                    row[0] = hot_key;
                }
                row
            })
            .collect();
        table(schema, &rows)
    }

    #[test]
    fn parallel_matches_serial() {
        let l = random_table(&["a", "k"], 5000, 64, 1);
        let r = random_table(&["k", "b"], 5000, 64, 2);
        let serial = ops::natural_join(&l, &r);
        for parts in [2, 3, 8] {
            let par = par_natural_join(&l, &r, parts);
            assert_eq!(row_multiset(&par), row_multiset(&serial), "parts={parts}");
        }
    }

    #[test]
    fn parallel_multi_key_matches_serial() {
        let l = random_table(&["a", "k1", "k2"], 2000, 8, 3);
        let r = random_table(&["k1", "k2", "b"], 2000, 8, 4);
        let serial = ops::natural_join(&l, &r);
        let par = par_natural_join(&l, &r, 4);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
    }

    #[test]
    fn parallel_wide_key_matches_serial() {
        let l = random_table(&["k1", "k2", "k3", "a"], 1500, 4, 5);
        let r = random_table(&["k1", "k2", "k3", "b"], 1500, 4, 6);
        let serial = ops::natural_join(&l, &r);
        let par = par_natural_join(&l, &r, 4);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
    }

    #[test]
    fn broadcast_matches_serial() {
        let l = random_table(&["a", "k"], 400, 64, 21);
        let r = random_table(&["k", "b"], 6000, 64, 22);
        let serial = ops::natural_join(&l, &r);
        for parts in [1, 3, 8] {
            let bc = broadcast_natural_join(&l, &r, parts);
            assert_eq!(bc.schema(), serial.schema());
            assert_eq!(row_multiset(&bc), row_multiset(&serial), "parts={parts}");
        }
        // Orientation-independent (build side flips).
        let bc = broadcast_natural_join(&r, &l, 4);
        assert_eq!(row_multiset(&bc), row_multiset(&ops::natural_join(&r, &l)));
    }

    #[test]
    fn broadcast_wide_key_matches_serial() {
        let l = random_table(&["k1", "k2", "k3", "a"], 300, 4, 23);
        let r = random_table(&["k1", "k2", "k3", "b"], 2500, 4, 24);
        let serial = ops::natural_join(&l, &r);
        let bc = broadcast_natural_join(&l, &r, 4);
        assert_eq!(row_multiset(&bc), row_multiset(&serial));
    }

    #[test]
    fn adaptive_picks_serial_for_small_inputs() {
        let l = table(&["a", "k"], &[vec![1, 2]]);
        let r = table(&["k", "b"], &[vec![2, 3]]);
        let (j, d) = natural_join_adaptive(&l, &r, &JoinConfig::default());
        assert_eq!(j.num_rows(), 1);
        assert_eq!(d.strategy, JoinStrategy::Serial);
        assert_eq!(d.partitions, 1);
    }

    #[test]
    fn adaptive_picks_broadcast_for_small_build_side() {
        let cfg = JoinConfig {
            serial_row_threshold: 1000,
            ..JoinConfig::default()
        };
        let build = random_table(&["k", "b"], 200, 64, 25);
        let probe = random_table(&["a", "k"], 5000, 64, 26);
        let (j, d) = natural_join_adaptive(&probe, &build, &cfg);
        assert_eq!(d.strategy, JoinStrategy::Broadcast);
        assert_eq!(d.build_side, BuildSide::Right);
        assert_eq!(d.build_rows, 200);
        assert_eq!(
            row_multiset(&j),
            row_multiset(&ops::natural_join(&probe, &build))
        );
        // Build side is positional-independent: flipped operands flip the label.
        let (_, d) = natural_join_adaptive(&build, &probe, &cfg);
        assert_eq!(d.build_side, BuildSide::Left);
    }

    #[test]
    fn adaptive_picks_partitioned_above_thresholds() {
        let cfg = JoinConfig {
            serial_row_threshold: 1000,
            broadcast_rows: 100,
            broadcast_bytes: 100,
            target_partition_rows: 1000,
            max_partitions: 4,
            ..JoinConfig::default()
        };
        let l = random_table(&["a", "k"], 4000, 64, 27);
        let r = random_table(&["k", "b"], 4000, 64, 28);
        let (j, d) = natural_join_adaptive(&l, &r, &cfg);
        assert_eq!(d.strategy, JoinStrategy::Partitioned);
        assert_eq!(d.partitions, 4); // 4000/1000 capped at 4
        assert_eq!(row_multiset(&j), row_multiset(&ops::natural_join(&l, &r)));
    }

    #[test]
    fn adaptive_partition_count_scales_and_clamps() {
        let cfg = JoinConfig {
            target_partition_rows: 1000,
            max_partitions: 8,
            ..JoinConfig::default()
        };
        assert_eq!(adaptive_partitions(10, &cfg), 1);
        assert_eq!(adaptive_partitions(2500, &cfg), 2);
        assert_eq!(adaptive_partitions(1_000_000, &cfg), 8);
        let uncapped = JoinConfig {
            max_partitions: 0,
            ..cfg
        };
        assert_eq!(
            adaptive_partitions(1_000_000, &uncapped),
            default_parallelism()
        );
    }

    #[test]
    fn cpu_max_parsing() {
        // 4 full CPUs.
        assert_eq!(parse_cpu_max("400000 100000\n"), Some(4));
        // Fractional quotas round up: 2.5 CPUs sustain 3 busy threads.
        assert_eq!(parse_cpu_max("250000 100000"), Some(3));
        // Sub-CPU quotas still yield one thread.
        assert_eq!(parse_cpu_max("20000 100000"), Some(1));
        // Unlimited or malformed → no signal.
        assert_eq!(parse_cpu_max("max 100000"), None);
        assert_eq!(parse_cpu_max(""), None);
        assert_eq!(parse_cpu_max("garbage here"), None);
        assert_eq!(parse_cpu_max("100000 0"), None);
        assert_eq!(parse_cpu_max("0 100000"), None);
    }

    #[test]
    fn parallelism_probe_priorities() {
        // Explicit override wins over everything.
        assert_eq!(probe_parallelism(Some("6"), Some("400000 100000"), 1), 6);
        assert_eq!(probe_parallelism(Some(" 2 "), None, 16), 2);
        // A zero or malformed override is ignored.
        assert_eq!(probe_parallelism(Some("0"), None, 5), 5);
        assert_eq!(probe_parallelism(Some("lots"), None, 5), 5);
        // The cgroup quota lifts an affinity-pinned underreport…
        assert_eq!(probe_parallelism(None, Some("800000 100000"), 1), 8);
        // …but never lowers a healthy report (quota may exceed the mask's
        // cores, or the mask may exceed the quota — take the max).
        assert_eq!(probe_parallelism(None, Some("200000 100000"), 12), 12);
        // No signals at all: whatever the runtime reported, floored at 1.
        assert_eq!(probe_parallelism(None, None, 4), 4);
        assert_eq!(probe_parallelism(None, Some("max 100000"), 0), 1);
    }

    #[test]
    fn auto_dispatch_small_input() {
        let l = table(&["a", "k"], &[vec![1, 2]]);
        let r = table(&["k", "b"], &[vec![2, 3]]);
        let j = natural_join_auto(&l, &r);
        assert_eq!(j.num_rows(), 1);
    }

    #[test]
    fn concat_preserves_rows() {
        let a = table(&["x"], &[vec![1], vec![2]]);
        let b = table(&["x"], &[vec![3]]);
        let schema = a.schema().clone();
        let c = concat(schema, vec![a, b]);
        assert_eq!(c.column(0), &[1, 2, 3]);
    }

    #[test]
    fn concat_copies_each_payload_byte_exactly_once() {
        use crate::metrics;
        // Exact-delta assertion on a global counter: serialize against the
        // other metrics tests and enable recording only inside the lock
        // (all other tests run with metrics disabled and cannot interfere).
        let _guard = metrics::test_lock();
        let a = random_table(&["a", "b", "c"], 500, 64, 7);
        let b = random_table(&["a", "b", "c"], 300, 64, 8);
        let schema = a.schema().clone();
        let expected_rows = a.num_rows() + b.num_rows();
        let expected_bytes = (a.byte_size() + b.byte_size()) as u64;

        let counter = metrics::counter("columnar.concat.bytes_copied");
        metrics::set_enabled(true);
        let before = counter.get();
        let c = concat(schema, vec![a, b]);
        let delta = counter.get() - before;
        metrics::set_enabled(false);

        assert_eq!(c.num_rows(), expected_rows);
        // One memcpy per column, each payload byte moved exactly once — the
        // old push_row_from path did rows×cols scalar pushes instead.
        assert_eq!(delta, expected_bytes);
    }

    #[test]
    fn par_join_path_copies_zero_concat_bytes() {
        use crate::metrics;
        let _guard = metrics::test_lock();
        let l = random_table(&["a", "k"], 4000, 32, 9);
        let r = random_table(&["k", "b"], 4000, 32, 10);
        let bytes = metrics::counter("columnar.concat.bytes_copied");
        let calls = metrics::counter("columnar.concat.calls");
        metrics::set_enabled(true);
        let before = (bytes.get(), calls.get());
        let j = par_natural_join(&l, &r, 8);
        let jb = broadcast_natural_join(&l, &r, 8);
        let delta = (bytes.get() - before.0, calls.get() - before.1);
        metrics::set_enabled(false);
        assert!(j.num_rows() > 0);
        assert_eq!(j.num_rows(), jb.num_rows());
        // Partition-native writes: concat is never invoked on the join path.
        assert_eq!(delta, (0, 0));
    }

    #[test]
    fn skewed_hot_key_matches_serial_and_bounds_straggler() {
        use crate::metrics;
        let _guard = metrics::test_lock();
        // 90% of probe rows share key 42; the build side holds several rows
        // for it, so the naive hash split would send 90% of all probe work
        // (and more of the output) to one partition.
        let probe = skewed_table(&["k", "a"], 20_000, 42, 90, 11);
        let build = random_table(&["k", "b"], 300, 97, 12);
        let serial = ops::natural_join(&probe, &build);
        metrics::set_enabled(true);
        metrics::gauge("columnar.par_join.presplit_skew_pct").set(0);
        metrics::gauge("columnar.par_join.max_skew_pct").set(0);
        metrics::gauge("columnar.par_join.straggler_pct").set(0);
        let par = par_natural_join(&probe, &build, 8);
        let presplit = metrics::gauge("columnar.par_join.presplit_skew_pct").get();
        let skew = metrics::gauge("columnar.par_join.max_skew_pct").get();
        let straggler = metrics::gauge("columnar.par_join.straggler_pct").get();
        metrics::set_enabled(false);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
        assert!(
            presplit > SKEW_TRIGGER_PCT as u64,
            "input not actually skewed: {presplit}%"
        );
        assert!(skew <= 150, "post-mitigation skew {skew}% > 150%");
        assert!(
            straggler <= 150,
            "straggler partition {straggler}% > 150% of median"
        );
    }

    #[test]
    fn resplit_flattens_partition_level_skew() {
        use crate::metrics;
        let _guard = metrics::test_lock();
        const PARTS: usize = 8;
        // Many *distinct* keys that all co-hash into partition 0, each under
        // the hot-key threshold: per-key broadcasting cannot balance this,
        // only dissolving the partition can.
        let colliding: Vec<u32> = (0u32..)
            .filter(|&k| partition_of(k as u64, PARTS) == 0)
            .take(64)
            .collect();
        let n = 24_000;
        let probe_rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                // 80% of rows cycle through the colliding keys, the rest
                // spread over the full key space.
                let k = if i % 5 != 0 {
                    colliding[i % 64]
                } else {
                    i as u32 % 797
                };
                vec![k, i as u32]
            })
            .collect();
        let probe = table(&["k", "a"], &probe_rows);
        let build_rows: Vec<Vec<u32>> = (0..797u32).map(|k| vec![k, k + 1]).collect();
        let build = table(&["k", "b"], &build_rows);
        let serial = ops::natural_join(&probe, &build);

        metrics::set_enabled(true);
        metrics::gauge("columnar.par_join.straggler_pct").set(0);
        let resplit_counter = metrics::counter("columnar.join.resplits");
        let before = resplit_counter.get();
        let (par, resplits) =
            partitioned_natural_join(&probe, &build, PARTS, &JoinConfig::default());
        let straggler = metrics::gauge("columnar.par_join.straggler_pct").get();
        let counted = resplit_counter.get() - before;
        metrics::set_enabled(false);

        assert_eq!(row_multiset(&par), row_multiset(&serial));
        assert!(
            resplits >= 1,
            "partition-level skew should trigger a re-split"
        );
        assert_eq!(counted, resplits as u64);
        assert!(
            straggler <= 150,
            "straggler {straggler}% > 150% after re-split"
        );

        // With re-splitting disabled the same input is a straggler.
        metrics::set_enabled(true);
        metrics::gauge("columnar.par_join.straggler_pct").set(0);
        let cfg = JoinConfig {
            max_resplits: 0,
            ..JoinConfig::default()
        };
        let (par, resplits) = partitioned_natural_join(&probe, &build, PARTS, &cfg);
        let unsplit = metrics::gauge("columnar.par_join.straggler_pct").get();
        metrics::set_enabled(false);
        assert_eq!(resplits, 0);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
        assert!(
            unsplit > 150,
            "expected an unmitigated straggler, got {unsplit}%"
        );
    }

    #[test]
    fn build_side_hot_key_matches_serial() {
        // Hot on the *build* side: one key with huge multiplicity multiplies
        // output rows; the build-side histogram must broadcast it too.
        let build = skewed_table(&["k", "b"], 4000, 7, 80, 13);
        let probe = random_table(&["k", "a"], 8000, 97, 14);
        let serial = ops::natural_join(&probe, &build);
        let par = par_natural_join(&probe, &build, 8);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
    }

    #[test]
    fn empty_partitions_are_fine() {
        let l = table(&["a", "k"], &[vec![1, 7]]);
        let r = table(&["k", "b"], &[vec![7, 9]]);
        let j = par_natural_join(&l, &r, 16);
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row_vec(0), vec![1, 7, 9]);
        let j = broadcast_natural_join(&l, &r, 16);
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row_vec(0), vec![1, 7, 9]);
    }

    #[test]
    fn empty_input_short_circuits() {
        let l = table(&["a", "k"], &[]);
        let r = random_table(&["k", "b"], 100, 8, 15);
        assert_eq!(par_natural_join(&l, &r, 8).num_rows(), 0);
        assert_eq!(par_natural_join(&r, &l, 8).num_rows(), 0);
        assert_eq!(broadcast_natural_join(&l, &r, 8).num_rows(), 0);
        assert_eq!(broadcast_natural_join(&r, &l, 8).num_rows(), 0);
    }
}
