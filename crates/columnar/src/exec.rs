//! Data-parallel execution: partition-native hash joins.
//!
//! Spark executes joins by shuffling both inputs into hash partitions and
//! joining partitions in parallel across the cluster, each task writing its
//! own shuffle partition of the output — the results are never reassembled
//! into one buffer. This module is the shared-memory analogue, and it keeps
//! that partition-native property: pass 1 collects the exact matching row
//! pairs per partition on scoped threads, a prefix sum turns the pair counts
//! into disjoint output ranges, and pass 2 writes every partition's rows
//! directly into one pre-sized output table through non-overlapping column
//! slices. The old concat-based reassembly (a full extra copy of every join
//! result, measured by `columnar.concat.bytes_copied`) is gone from the join
//! path entirely; small inputs still skip partitioning — the same "little
//! setup overhead" property of Spark the paper's pre-evaluation leans on
//! (§5).
//!
//! Skew: every row of one key hashes to one partition, so a hot key makes a
//! straggler no matter how many threads run — the PRoST / Naacke et al.
//! observation that partitioning strategy, not operator tuning, dominates
//! SPARQL latency on Spark-style engines. When the pre-split histogram shows
//! a partition above [`SKEW_TRIGGER_PCT`], hot keys (frequency above the
//! ideal partition size on *either* side) are pulled out: their build rows
//! go into a broadcast index shared by all partitions and their probe rows
//! are dealt round-robin — the broadcast + redistribution hybrid of Spark
//! AQE's skew-join handling. Gauges `columnar.par_join.presplit_skew_pct`
//! (before mitigation), `columnar.par_join.max_skew_pct` (after), and
//! `columnar.par_join.straggler_pct` (largest ÷ median load) make the
//! effect observable.

use std::cmp::Ordering;

use rustc_hash::{FxHashMap, FxHashSet};

use crate::metrics::SpanTimer;
use crate::ops;
use crate::schema::Schema;
use crate::table::Table;
use crate::{metric_counter, metric_gauge, metric_histogram};

/// Probe-side row count below which partitioning is not worth the setup.
pub const PARALLEL_ROW_THRESHOLD: usize = 1 << 15;

/// Pre-split skew percentage (largest partition × parts ÷ total rows; 100 =
/// perfectly balanced) above which hot-key mitigation kicks in.
pub const SKEW_TRIGGER_PCT: usize = 130;

/// Fibonacci-hash a key value into one of `parts` partitions.
#[inline]
fn partition_of(key: u64, parts: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % parts
}

/// Folds a row's join-key columns into a `u64`.
///
/// For one or two key columns the fold is *exact* (injective), so the value
/// doubles as both the partitioning key and the per-partition hash-map key,
/// and hot-key detection can trust it as the key's identity. Wider keys fold
/// lossily — fine for partitioning (a collision merely co-locates two keys),
/// but the per-partition maps then match on the exact `Vec<u32>` key instead
/// and skew mitigation is skipped.
#[inline]
fn fold_key(table: &Table, keys: &[usize], row: usize) -> u64 {
    match keys {
        [k] => table.value(row, *k) as u64,
        [k1, k2] => ((table.value(row, *k1) as u64) << 32) | table.value(row, *k2) as u64,
        _ => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &c in keys {
                h = (h ^ table.value(row, c) as u64).wrapping_mul(0x100_0000_01B3);
            }
            h
        }
    }
}

/// Concatenates tables with identical schemas.
///
/// Each input is appended with one bulk `extend_from_slice` per column
/// (a memcpy), not row-by-row scalar pushes. Since the partition-native
/// rewrite of [`par_natural_join`] this is **no longer on the join path** —
/// partitions write straight into the pre-sized output — so the
/// `columnar.concat.bytes_copied` counter must stay zero across parallel
/// joins (asserted by tests and the PR-3 bench). It remains available for
/// genuine multi-table appends (e.g. UNION-style accumulation).
pub fn concat(schema: Schema, tables: Vec<Table>) -> Table {
    let mut out = Table::empty(schema);
    out.reserve(tables.iter().map(Table::num_rows).sum());
    let mut bytes = 0u64;
    for t in tables {
        debug_assert_eq!(t.schema(), out.schema());
        bytes += out.extend_from_table(&t) as u64;
    }
    metric_counter!("columnar.concat.calls").inc();
    metric_counter!("columnar.concat.bytes_copied").add(bytes);
    out
}

/// How many worker threads to use for parallel joins.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Collects the exact matching `(left_row, right_row)` pairs of one
/// partition: a hash join over the partition's build rows probed by its
/// probe rows, plus the partition's share of hot probe rows matched against
/// the shared broadcast index.
#[allow(clippy::too_many_arguments)]
fn collect_pairs(
    build: &Table,
    probe: &Table,
    build_keys: &[usize],
    probe_keys: &[usize],
    build_rows: &[u32],
    probe_rows: &[u32],
    hot_probe_rows: &[u32],
    build_hash: &[u64],
    probe_hash: &[u64],
    bcast: &FxHashMap<u64, Vec<u32>>,
    left_is_build: bool,
) -> Vec<(u32, u32)> {
    let orient = |b: u32, p: u32| if left_is_build { (b, p) } else { (p, b) };
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if build_keys.len() <= 2 {
        // Exact u64 keys: the fold is injective for 1–2 columns.
        let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        index.reserve(build_rows.len());
        for &r in build_rows {
            index.entry(build_hash[r as usize]).or_default().push(r);
        }
        for &r in probe_rows {
            if let Some(matches) = index.get(&probe_hash[r as usize]) {
                for &b in matches {
                    pairs.push(orient(b, r));
                }
            }
        }
    } else {
        // Wide keys: partitioned by the lossy fold, matched on exact values.
        let mut index: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
        for &r in build_rows {
            let key: Vec<u32> = build_keys.iter().map(|&c| build.value(r as usize, c)).collect();
            index.entry(key).or_default().push(r);
        }
        let mut scratch: Vec<u32> = Vec::new();
        for &r in probe_rows {
            scratch.clear();
            scratch.extend(probe_keys.iter().map(|&c| probe.value(r as usize, c)));
            if let Some(matches) = index.get(scratch.as_slice()) {
                for &b in matches {
                    pairs.push(orient(b, r));
                }
            }
        }
    }
    // Hot probe rows match only through the broadcast index: every build row
    // of a hot key was excluded from the hashed partitions, so each
    // (probe, build) pair is produced exactly once.
    for &r in hot_probe_rows {
        if let Some(matches) = bcast.get(&probe_hash[r as usize]) {
            for &b in matches {
                pairs.push(orient(b, r));
            }
        }
    }
    pairs
}

/// Natural join that partitions both sides by join-key hash, collects match
/// pairs on scoped threads, and writes each partition's output directly into
/// disjoint slices of one pre-sized result table (no reassembly copy). Row
/// order of the result is partition-major (a permutation of the serial
/// join's bag). Hot keys are broadcast when the hash split would produce a
/// straggler partition.
pub fn par_natural_join(left: &Table, right: &Table, parts: usize) -> Table {
    let common = left.schema().common_columns(right.schema());
    if common.is_empty() || parts <= 1 || left.is_empty() || right.is_empty() {
        return ops::natural_join(left, right);
    }
    let _span = SpanTimer::start(metric_histogram!("columnar.par_join.wall_micros"));
    let left_keys: Vec<usize> = common
        .iter()
        .map(|c| left.schema().index_of(c).unwrap())
        .collect();
    let right_keys: Vec<usize> = common
        .iter()
        .map(|c| right.schema().index_of(c).unwrap())
        .collect();
    let (schema, right_payload) = ops::join_schema(left, right, &right_keys);

    // Build on the smaller side, probe with the larger.
    let left_is_build = left.num_rows() <= right.num_rows();
    let (build, probe) = if left_is_build { (left, right) } else { (right, left) };
    let (build_keys, probe_keys) = if left_is_build {
        (&left_keys, &right_keys)
    } else {
        (&right_keys, &left_keys)
    };
    let narrow = build_keys.len() <= 2;

    metric_counter!("columnar.par_join.calls").inc();
    metric_counter!("columnar.par_join.partitions").add(parts as u64);
    metric_counter!("columnar.par_join.build_rows").add(build.num_rows() as u64);
    metric_counter!("columnar.par_join.probe_rows").add(probe.num_rows() as u64);

    let build_hash: Vec<u64> =
        (0..build.num_rows()).map(|r| fold_key(build, build_keys, r)).collect();
    let probe_hash: Vec<u64> =
        (0..probe.num_rows()).map(|r| fold_key(probe, probe_keys, r)).collect();

    // Pre-split histogram: the partition loads a pure hash split would get.
    let presplit = |hashes: &[u64]| -> usize {
        let mut counts = vec![0usize; parts];
        for &h in hashes {
            counts[partition_of(h, parts)] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    };
    let presplit_pct = (presplit(&probe_hash) * parts * 100 / probe.num_rows())
        .max(presplit(&build_hash) * parts * 100 / build.num_rows());
    metric_gauge!("columnar.par_join.presplit_skew_pct").set_max(presplit_pct as u64);

    // Hot keys: frequency above the ideal partition size on either side.
    // The probe-side histogram catches classic probe stragglers; the
    // build-side histogram catches high-multiplicity build keys whose
    // *output* would explode one partition.
    let probe_ideal = (probe.num_rows() / parts).max(1);
    let build_ideal = (build.num_rows() / parts).max(1);
    let hot: FxHashSet<u64> = if narrow && presplit_pct > SKEW_TRIGGER_PCT {
        let mut freq: FxHashMap<u64, usize> = FxHashMap::default();
        for &k in &probe_hash {
            *freq.entry(k).or_default() += 1;
        }
        let mut hot: FxHashSet<u64> =
            freq.iter().filter(|&(_, &c)| c > probe_ideal).map(|(&k, _)| k).collect();
        freq.clear();
        for &k in &build_hash {
            *freq.entry(k).or_default() += 1;
        }
        hot.extend(freq.iter().filter(|&(_, &c)| c > build_ideal).map(|(&k, _)| k));
        hot
    } else {
        FxHashSet::default()
    };
    metric_counter!("columnar.par_join.hot_keys").add(hot.len() as u64);

    // Split rows (by index — no gather copies): hot build rows go to the
    // broadcast list, hot probe rows are dealt round-robin, the rest hash.
    let mut build_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
    let mut bcast_rows: Vec<u32> = Vec::new();
    for (r, &k) in build_hash.iter().enumerate() {
        if hot.contains(&k) {
            bcast_rows.push(r as u32);
        } else {
            build_parts[partition_of(k, parts)].push(r as u32);
        }
    }
    let mut probe_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
    let mut hot_probe_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
    let mut deal = 0usize;
    for (r, &k) in probe_hash.iter().enumerate() {
        if hot.contains(&k) {
            hot_probe_parts[deal % parts].push(r as u32);
            deal += 1;
        } else {
            probe_parts[partition_of(k, parts)].push(r as u32);
        }
    }
    metric_counter!("columnar.par_join.broadcast_rows").add(bcast_rows.len() as u64);

    let mut bcast_index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for &r in &bcast_rows {
        bcast_index.entry(build_hash[r as usize]).or_default().push(r);
    }

    // Post-mitigation probe load per partition — what the skew-join
    // microbench asserts on (straggler ≤ 1.5× median).
    let mut loads: Vec<usize> =
        (0..parts).map(|p| probe_parts[p].len() + hot_probe_parts[p].len()).collect();
    let largest = loads.iter().copied().max().unwrap_or(0);
    metric_gauge!("columnar.par_join.max_skew_pct")
        .set_max((largest * parts * 100 / probe.num_rows()) as u64);
    loads.sort_unstable();
    let median = loads[parts / 2].max(1);
    metric_gauge!("columnar.par_join.straggler_pct").set_max((largest * 100 / median) as u64);

    // Pass 1: per-partition exact match-pair collection on scoped threads.
    // Pairs are stored in (left_row, right_row) orientation so pass 2 is
    // orientation-free.
    let pair_lists: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                let (build_rows, probe_rows, hot_rows) =
                    (&build_parts[p], &probe_parts[p], &hot_probe_parts[p]);
                let (build_hash, probe_hash, bcast) = (&build_hash, &probe_hash, &bcast_index);
                scope.spawn(move || {
                    collect_pairs(
                        build, probe, build_keys, probe_keys, build_rows, probe_rows, hot_rows,
                        build_hash, probe_hash, bcast, left_is_build,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join worker panicked")).collect()
    });

    // Exact output size is now known; pre-size the result once.
    let total: usize = pair_lists.iter().map(Vec::len).sum();
    metric_counter!("columnar.par_join.out_rows").add(total as u64);

    // Pass 2: each partition writes its rows into disjoint slices of the
    // pre-sized output columns (chained `split_at_mut`) — zero reassembly,
    // zero `concat` bytes.
    let ncols = schema.len();
    let left_ncols = left.schema().len();
    let mut cols: Vec<Vec<u32>> = (0..ncols).map(|_| vec![0u32; total]).collect();
    let mut per_part: Vec<Vec<&mut [u32]>> = (0..parts).map(|_| Vec::with_capacity(ncols)).collect();
    for col in &mut cols {
        let mut rest: &mut [u32] = col.as_mut_slice();
        for (p, pairs) in pair_lists.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(pairs.len());
            per_part[p].push(head);
            rest = tail;
        }
    }
    std::thread::scope(|scope| {
        for (slices, pairs) in per_part.into_iter().zip(&pair_lists) {
            let right_payload = &right_payload;
            scope.spawn(move || {
                for (c, out_col) in slices.into_iter().enumerate() {
                    if c < left_ncols {
                        let src = left.column(c);
                        for (j, &(lr, _)) in pairs.iter().enumerate() {
                            out_col[j] = src[lr as usize];
                        }
                    } else {
                        let src = right.column(right_payload[c - left_ncols]);
                        for (j, &(_, rr)) in pairs.iter().enumerate() {
                            out_col[j] = src[rr as usize];
                        }
                    }
                }
            });
        }
    });
    Table::from_columns(schema, cols)
}

/// Chooses between the serial and partitioned join based on input sizes.
pub fn natural_join_auto(left: &Table, right: &Table) -> Table {
    let probe = left.num_rows().max(right.num_rows());
    if probe >= PARALLEL_ROW_THRESHOLD {
        par_natural_join(left, right, default_parallelism())
    } else {
        ops::natural_join(left, right)
    }
}

/// Canonical multiset form of a table's rows (sorted row vectors) — used by
/// tests and by engine-equivalence checks, where row order is unspecified.
pub fn row_multiset(table: &Table) -> Vec<Vec<u32>> {
    let mut rows: Vec<Vec<u32>> = (0..table.num_rows()).map(|i| table.row_vec(i)).collect();
    rows.sort_unstable_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(schema: &[&str], rows: &[Vec<u32>]) -> Table {
        Table::from_rows(Schema::new(schema.iter().map(|s| s.to_string())), rows)
    }

    fn random_table(schema: &[&str], n: usize, card: u32, seed: u64) -> Table {
        // Tiny deterministic LCG; avoids a dev-dependency in unit tests.
        let mut state = seed.wrapping_add(0x853c49e6748fea9b);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % card
        };
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..schema.len()).map(|_| next()).collect())
            .collect();
        table(schema, &rows)
    }

    /// A probe side where `skew_pct`% of rows share one hot key.
    fn skewed_table(schema: &[&str], n: usize, hot_key: u32, skew_pct: usize, seed: u64) -> Table {
        let base = random_table(schema, n, 97, seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut row = base.row_vec(i);
                if i * 100 / n < skew_pct {
                    row[0] = hot_key;
                }
                row
            })
            .collect();
        table(schema, &rows)
    }

    #[test]
    fn parallel_matches_serial() {
        let l = random_table(&["a", "k"], 5000, 64, 1);
        let r = random_table(&["k", "b"], 5000, 64, 2);
        let serial = ops::natural_join(&l, &r);
        for parts in [2, 3, 8] {
            let par = par_natural_join(&l, &r, parts);
            assert_eq!(row_multiset(&par), row_multiset(&serial), "parts={parts}");
        }
    }

    #[test]
    fn parallel_multi_key_matches_serial() {
        let l = random_table(&["a", "k1", "k2"], 2000, 8, 3);
        let r = random_table(&["k1", "k2", "b"], 2000, 8, 4);
        let serial = ops::natural_join(&l, &r);
        let par = par_natural_join(&l, &r, 4);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
    }

    #[test]
    fn parallel_wide_key_matches_serial() {
        let l = random_table(&["k1", "k2", "k3", "a"], 1500, 4, 5);
        let r = random_table(&["k1", "k2", "k3", "b"], 1500, 4, 6);
        let serial = ops::natural_join(&l, &r);
        let par = par_natural_join(&l, &r, 4);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
    }

    #[test]
    fn auto_dispatch_small_input() {
        let l = table(&["a", "k"], &[vec![1, 2]]);
        let r = table(&["k", "b"], &[vec![2, 3]]);
        let j = natural_join_auto(&l, &r);
        assert_eq!(j.num_rows(), 1);
    }

    #[test]
    fn concat_preserves_rows() {
        let a = table(&["x"], &[vec![1], vec![2]]);
        let b = table(&["x"], &[vec![3]]);
        let schema = a.schema().clone();
        let c = concat(schema, vec![a, b]);
        assert_eq!(c.column(0), &[1, 2, 3]);
    }

    #[test]
    fn concat_copies_each_payload_byte_exactly_once() {
        use crate::metrics;
        // Exact-delta assertion on a global counter: serialize against the
        // other metrics tests and enable recording only inside the lock
        // (all other tests run with metrics disabled and cannot interfere).
        let _guard = metrics::test_lock();
        let a = random_table(&["a", "b", "c"], 500, 64, 7);
        let b = random_table(&["a", "b", "c"], 300, 64, 8);
        let schema = a.schema().clone();
        let expected_rows = a.num_rows() + b.num_rows();
        let expected_bytes = (a.byte_size() + b.byte_size()) as u64;

        let counter = metrics::counter("columnar.concat.bytes_copied");
        metrics::set_enabled(true);
        let before = counter.get();
        let c = concat(schema, vec![a, b]);
        let delta = counter.get() - before;
        metrics::set_enabled(false);

        assert_eq!(c.num_rows(), expected_rows);
        // One memcpy per column, each payload byte moved exactly once — the
        // old push_row_from path did rows×cols scalar pushes instead.
        assert_eq!(delta, expected_bytes);
    }

    #[test]
    fn par_join_path_copies_zero_concat_bytes() {
        use crate::metrics;
        let _guard = metrics::test_lock();
        let l = random_table(&["a", "k"], 4000, 32, 9);
        let r = random_table(&["k", "b"], 4000, 32, 10);
        let bytes = metrics::counter("columnar.concat.bytes_copied");
        let calls = metrics::counter("columnar.concat.calls");
        metrics::set_enabled(true);
        let before = (bytes.get(), calls.get());
        let j = par_natural_join(&l, &r, 8);
        let delta = (bytes.get() - before.0, calls.get() - before.1);
        metrics::set_enabled(false);
        assert!(j.num_rows() > 0);
        // Partition-native writes: concat is never invoked on the join path.
        assert_eq!(delta, (0, 0));
    }

    #[test]
    fn skewed_hot_key_matches_serial_and_bounds_straggler() {
        use crate::metrics;
        let _guard = metrics::test_lock();
        // 90% of probe rows share key 42; the build side holds several rows
        // for it, so the naive hash split would send 90% of all probe work
        // (and more of the output) to one partition.
        let probe = skewed_table(&["k", "a"], 20_000, 42, 90, 11);
        let build = random_table(&["k", "b"], 300, 97, 12);
        let serial = ops::natural_join(&probe, &build);
        metrics::set_enabled(true);
        metrics::gauge("columnar.par_join.presplit_skew_pct").set(0);
        metrics::gauge("columnar.par_join.max_skew_pct").set(0);
        metrics::gauge("columnar.par_join.straggler_pct").set(0);
        let par = par_natural_join(&probe, &build, 8);
        let presplit = metrics::gauge("columnar.par_join.presplit_skew_pct").get();
        let skew = metrics::gauge("columnar.par_join.max_skew_pct").get();
        let straggler = metrics::gauge("columnar.par_join.straggler_pct").get();
        metrics::set_enabled(false);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
        assert!(presplit > SKEW_TRIGGER_PCT as u64, "input not actually skewed: {presplit}%");
        assert!(skew <= 150, "post-mitigation skew {skew}% > 150%");
        assert!(straggler <= 150, "straggler partition {straggler}% > 150% of median");
    }

    #[test]
    fn build_side_hot_key_matches_serial() {
        // Hot on the *build* side: one key with huge multiplicity multiplies
        // output rows; the build-side histogram must broadcast it too.
        let build = skewed_table(&["k", "b"], 4000, 7, 80, 13);
        let probe = random_table(&["k", "a"], 8000, 97, 14);
        let serial = ops::natural_join(&probe, &build);
        let par = par_natural_join(&probe, &build, 8);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
    }

    #[test]
    fn empty_partitions_are_fine() {
        let l = table(&["a", "k"], &[vec![1, 7]]);
        let r = table(&["k", "b"], &[vec![7, 9]]);
        let j = par_natural_join(&l, &r, 16);
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row_vec(0), vec![1, 7, 9]);
    }

    #[test]
    fn empty_input_short_circuits() {
        let l = table(&["a", "k"], &[]);
        let r = random_table(&["k", "b"], 100, 8, 15);
        assert_eq!(par_natural_join(&l, &r, 8).num_rows(), 0);
        assert_eq!(par_natural_join(&r, &l, 8).num_rows(), 0);
    }
}
