//! Data-parallel execution: partitioned hash joins.
//!
//! Spark executes joins by shuffling both inputs into hash partitions and
//! joining partitions in parallel across the cluster. This module is the
//! shared-memory analogue: rows are partitioned by a multiplicative hash of
//! their join key, partition pairs are joined on scoped threads, and the
//! partial results are concatenated. Small inputs skip partitioning — the
//! same "little setup overhead" property of Spark the paper's
//! pre-evaluation leans on (§5).

use std::cmp::Ordering;

use crate::metrics::SpanTimer;
use crate::ops;
use crate::schema::Schema;
use crate::table::Table;
use crate::{metric_counter, metric_gauge, metric_histogram};

/// Probe-side row count below which partitioning is not worth the copies.
pub const PARALLEL_ROW_THRESHOLD: usize = 1 << 15;

/// Fibonacci-hash a key value into one of `parts` partitions.
#[inline]
fn partition_of(key: u64, parts: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % parts
}

fn key_of(table: &Table, keys: &[usize], row: usize) -> u64 {
    let mut k: u64 = 0;
    for &c in keys {
        k = k
            .rotate_left(27)
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(table.value(row, c) as u64);
    }
    k
}

fn split(table: &Table, keys: &[usize], parts: usize) -> Vec<Table> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for row in 0..table.num_rows() {
        buckets[partition_of(key_of(table, keys, row), parts)].push(row);
    }
    buckets.into_iter().map(|idx| table.gather(&idx)).collect()
}

/// Concatenates tables with identical schemas.
///
/// Each input is appended with one bulk `extend_from_slice` per column
/// (a memcpy), not row-by-row scalar pushes — this sits on the hot path of
/// every partitioned parallel join, where the old O(rows × cols) scalar
/// reassembly dominated. The `columnar.concat.bytes_copied` counter records
/// exactly the payload bytes moved, so regressions are observable.
pub fn concat(schema: Schema, tables: Vec<Table>) -> Table {
    let mut out = Table::empty(schema);
    out.reserve(tables.iter().map(Table::num_rows).sum());
    let mut bytes = 0u64;
    for t in tables {
        debug_assert_eq!(t.schema(), out.schema());
        bytes += out.extend_from_table(&t) as u64;
    }
    metric_counter!("columnar.concat.calls").inc();
    metric_counter!("columnar.concat.bytes_copied").add(bytes);
    out
}

/// How many worker threads to use for parallel joins.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Natural join that partitions both sides by join-key hash and joins the
/// partition pairs on scoped threads. Row order of the result is
/// partition-major (a permutation of the serial join's bag).
pub fn par_natural_join(left: &Table, right: &Table, parts: usize) -> Table {
    let common = left.schema().common_columns(right.schema());
    if common.is_empty() || parts <= 1 {
        return ops::natural_join(left, right);
    }
    let _span = SpanTimer::start(metric_histogram!("columnar.par_join.wall_micros"));
    let left_keys: Vec<usize> = common
        .iter()
        .map(|c| left.schema().index_of(c).unwrap())
        .collect();
    let right_keys: Vec<usize> = common
        .iter()
        .map(|c| right.schema().index_of(c).unwrap())
        .collect();

    let left_parts = split(left, &left_keys, parts);
    let right_parts = split(right, &right_keys, parts);

    // Partition skew: Spark's stage timelines expose stragglers; here the
    // high-watermark gauge of (largest partition × parts ÷ total rows) in
    // percent plays that role (100 = perfectly balanced).
    metric_counter!("columnar.par_join.calls").inc();
    metric_counter!("columnar.par_join.partitions").add(parts as u64);
    metric_counter!("columnar.par_join.build_rows").add(left.num_rows().min(right.num_rows()) as u64);
    metric_counter!("columnar.par_join.probe_rows").add(left.num_rows().max(right.num_rows()) as u64);
    let probe_total = left.num_rows().max(right.num_rows());
    let (probe_parts, _) = if left.num_rows() >= right.num_rows() {
        (&left_parts, &right_parts)
    } else {
        (&right_parts, &left_parts)
    };
    let largest = probe_parts.iter().map(Table::num_rows).max().unwrap_or(0);
    if let Some(skew_pct) = (largest * parts * 100).checked_div(probe_total) {
        metric_gauge!("columnar.par_join.max_skew_pct").set_max(skew_pct as u64);
    }

    let results: Vec<Table> = std::thread::scope(|scope| {
        let handles: Vec<_> = left_parts
            .iter()
            .zip(&right_parts)
            .map(|(l, r)| scope.spawn(move || ops::natural_join(l, r)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("join worker panicked")).collect()
    });

    let schema = results
        .first()
        .map(|t| t.schema().clone())
        .expect("at least one partition");
    let out = concat(schema, results);
    metric_counter!("columnar.par_join.out_rows").add(out.num_rows() as u64);
    out
}

/// Chooses between the serial and partitioned join based on input sizes.
pub fn natural_join_auto(left: &Table, right: &Table) -> Table {
    let probe = left.num_rows().max(right.num_rows());
    if probe >= PARALLEL_ROW_THRESHOLD {
        par_natural_join(left, right, default_parallelism())
    } else {
        ops::natural_join(left, right)
    }
}

/// Canonical multiset form of a table's rows (sorted row vectors) — used by
/// tests and by engine-equivalence checks, where row order is unspecified.
pub fn row_multiset(table: &Table) -> Vec<Vec<u32>> {
    let mut rows: Vec<Vec<u32>> = (0..table.num_rows()).map(|i| table.row_vec(i)).collect();
    rows.sort_unstable_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(schema: &[&str], rows: &[Vec<u32>]) -> Table {
        Table::from_rows(Schema::new(schema.iter().map(|s| s.to_string())), rows)
    }

    fn random_table(schema: &[&str], n: usize, card: u32, seed: u64) -> Table {
        // Tiny deterministic LCG; avoids a dev-dependency in unit tests.
        let mut state = seed.wrapping_add(0x853c49e6748fea9b);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % card
        };
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..schema.len()).map(|_| next()).collect())
            .collect();
        table(schema, &rows)
    }

    #[test]
    fn parallel_matches_serial() {
        let l = random_table(&["a", "k"], 5000, 64, 1);
        let r = random_table(&["k", "b"], 5000, 64, 2);
        let serial = ops::natural_join(&l, &r);
        for parts in [2, 3, 8] {
            let par = par_natural_join(&l, &r, parts);
            assert_eq!(row_multiset(&par), row_multiset(&serial), "parts={parts}");
        }
    }

    #[test]
    fn parallel_multi_key_matches_serial() {
        let l = random_table(&["a", "k1", "k2"], 2000, 8, 3);
        let r = random_table(&["k1", "k2", "b"], 2000, 8, 4);
        let serial = ops::natural_join(&l, &r);
        let par = par_natural_join(&l, &r, 4);
        assert_eq!(row_multiset(&par), row_multiset(&serial));
    }

    #[test]
    fn auto_dispatch_small_input() {
        let l = table(&["a", "k"], &[vec![1, 2]]);
        let r = table(&["k", "b"], &[vec![2, 3]]);
        let j = natural_join_auto(&l, &r);
        assert_eq!(j.num_rows(), 1);
    }

    #[test]
    fn concat_preserves_rows() {
        let a = table(&["x"], &[vec![1], vec![2]]);
        let b = table(&["x"], &[vec![3]]);
        let schema = a.schema().clone();
        let c = concat(schema, vec![a, b]);
        assert_eq!(c.column(0), &[1, 2, 3]);
    }

    #[test]
    fn concat_copies_each_payload_byte_exactly_once() {
        use crate::metrics;
        // Exact-delta assertion on a global counter: serialize against the
        // other metrics tests and enable recording only inside the lock
        // (all other tests run with metrics disabled and cannot interfere).
        let _guard = metrics::test_lock();
        let a = random_table(&["a", "b", "c"], 500, 64, 7);
        let b = random_table(&["a", "b", "c"], 300, 64, 8);
        let schema = a.schema().clone();
        let expected_rows = a.num_rows() + b.num_rows();
        let expected_bytes = (a.byte_size() + b.byte_size()) as u64;

        let counter = metrics::counter("columnar.concat.bytes_copied");
        metrics::set_enabled(true);
        let before = counter.get();
        let c = concat(schema, vec![a, b]);
        let delta = counter.get() - before;
        metrics::set_enabled(false);

        assert_eq!(c.num_rows(), expected_rows);
        // One memcpy per column, each payload byte moved exactly once — the
        // old push_row_from path did rows×cols scalar pushes instead.
        assert_eq!(delta, expected_bytes);
    }

    #[test]
    fn empty_partitions_are_fine() {
        let l = table(&["a", "k"], &[vec![1, 7]]);
        let r = table(&["k", "b"], &[vec![7, 9]]);
        let j = par_natural_join(&l, &r, 16);
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row_vec(0), vec![1, 7, 9]);
    }
}
