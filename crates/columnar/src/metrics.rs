//! Zero-dependency observability primitives.
//!
//! Spark hands S2RDF per-stage input sizes, shuffle volumes and task times
//! through its UI and accumulator system; the paper's whole evaluation
//! (Tables 3–6) is built on those numbers. This module is the shared-memory
//! port's equivalent: a process-global registry of atomic counters, gauges
//! and fixed-bucket latency histograms, plus lightweight span timers.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Every mutation first checks one
//!    relaxed atomic bool; call sites increment once per *operator call*,
//!    never per row, so the disabled path is a load + branch per operator.
//! 2. **Zero dependencies.** Hand-rolled JSON, std-only atomics.
//! 3. **Callsite caching.** The [`metric_counter!`]/[`metric_gauge!`]/
//!    [`metric_histogram!`] macros stash the `Arc` handle in a per-callsite
//!    `OnceLock`, so the registry mutex is touched once per site, ever.
//!
//! Metrics are *global and cumulative* (like Spark's executor metrics);
//! per-query breakdowns are the job of the `Trace` span tree in
//! `s2rdf-core`, which snapshots deltas around operators instead.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable metric recording. Disabled is the default;
/// handles stay valid either way, mutations become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether metric recording is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` when metrics are enabled.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one when metrics are enabled.
    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge with a high-watermark variant.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Stores `v` when metrics are enabled.
    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` is larger (high-watermark).
    #[inline(always)]
    pub fn set_max(&self, v: u64) {
        if enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ latency buckets. Bucket `i` holds samples with
/// `2^(i-1) ≤ µs < 2^i` (bucket 0 is `0 µs`); the last bucket is open-ended.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Fixed-bucket (log₂ microsecond) latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a microsecond sample: `0 → 0`, otherwise
/// `min(bit_length(µs), HISTOGRAM_BUCKETS-1)`.
#[inline]
pub fn bucket_of(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one latency sample (in microseconds) when metrics are enabled.
    #[inline]
    pub fn record(&self, micros: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Largest recorded sample in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (0..=1) from the buckets.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Upper edge of bucket i.
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max_micros()
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micros.store(0, Ordering::Relaxed);
        self.max_micros.store(0, Ordering::Relaxed);
    }
}

/// RAII timer that records its elapsed wall time into a [`Histogram`] on
/// drop. When metrics are disabled at `start` time it holds nothing and
/// drop is free.
#[must_use = "a SpanTimer records on drop; binding it to _ discards the span"]
pub struct SpanTimer {
    inner: Option<(Instant, Arc<Histogram>)>,
}

impl SpanTimer {
    /// Starts timing into `hist` (no-op handle if metrics are disabled).
    #[inline]
    pub fn start(hist: &Arc<Histogram>) -> Self {
        Self {
            inner: enabled().then(|| (Instant::now(), Arc::clone(hist))),
        }
    }

    /// A timer that records nowhere (for conditional instrumentation).
    pub fn disabled() -> Self {
        Self { inner: None }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.inner.take() {
            hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Default)]
struct Registry {
    map: Mutex<BTreeMap<String, Metric>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lock_map() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().map.lock().unwrap_or_else(|p| p.into_inner())
}

/// Gets or registers the counter named `name`.
///
/// Prefer [`metric_counter!`] on hot paths — it caches the handle per
/// callsite instead of taking the registry lock every call.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = lock_map();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => Arc::clone(c),
        other => panic!("metric {name:?} already registered as {other:?}"),
    }
}

/// Gets or registers the gauge named `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = lock_map();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => Arc::clone(g),
        other => panic!("metric {name:?} already registered as {other:?}"),
    }
}

/// Gets or registers the histogram named `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = lock_map();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
    {
        Metric::Histogram(h) => Arc::clone(h),
        other => panic!("metric {name:?} already registered as {other:?}"),
    }
}

/// Zeroes every registered metric (handles remain valid).
pub fn reset() {
    for metric in lock_map().values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// One registry entry at snapshot time.
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    pub name: String,
    pub value: SnapshotValue,
}

/// Point-in-time value of a metric.
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(u64),
    Histogram {
        count: u64,
        sum_micros: u64,
        max_micros: u64,
        p50_micros: u64,
        p95_micros: u64,
        p99_micros: u64,
        /// Non-empty log₂ buckets as `(bucket_index, count)`.
        buckets: Vec<(usize, u64)>,
    },
}

/// Consistent-enough view of the whole registry (each metric is read
/// atomically; cross-metric skew is possible, as in Spark's UI).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub entries: Vec<SnapshotEntry>,
}

/// Captures every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let entries = lock_map()
        .iter()
        .map(|(name, metric)| SnapshotEntry {
            name: name.clone(),
            value: match metric {
                Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                Metric::Histogram(h) => SnapshotValue::Histogram {
                    count: h.count(),
                    sum_micros: h.sum_micros(),
                    max_micros: h.max_micros(),
                    p50_micros: h.quantile_micros(0.50),
                    p95_micros: h.quantile_micros(0.95),
                    p99_micros: h.quantile_micros(0.99),
                    buckets: h
                        .bucket_counts()
                        .into_iter()
                        .enumerate()
                        .filter(|&(_, n)| n > 0)
                        .collect(),
                },
            },
        })
        .collect();
    MetricsSnapshot { entries }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": ", json_escape(&e.name));
            match &e.value {
                SnapshotValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\": \"counter\", \"value\": {v}}}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {v}}}");
                }
                SnapshotValue::Histogram {
                    count,
                    sum_micros,
                    max_micros,
                    p50_micros,
                    p95_micros,
                    p99_micros,
                    buckets,
                } => {
                    let _ = write!(
                        out,
                        "{{\"type\": \"histogram\", \"count\": {count}, \
                         \"sum_micros\": {sum_micros}, \"max_micros\": {max_micros}, \
                         \"p50_micros\": {p50_micros}, \"p95_micros\": {p95_micros}, \
                         \"p99_micros\": {p99_micros}, \"buckets\": {{"
                    );
                    for (j, (bucket, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "\"{bucket}\": {n}");
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n}");
        out
    }
}

/// Serializes tests that assert exact metric deltas. Such tests must hold
/// this lock around `set_enabled(true) … set_enabled(false)` so concurrent
/// tests (which run with metrics disabled) cannot perturb the counters.
#[doc(hidden)]
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Counter handle cached per callsite in a `OnceLock`.
#[macro_export]
macro_rules! metric_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Gauge handle cached per callsite in a `OnceLock`.
#[macro_export]
macro_rules! metric_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Histogram handle cached per callsite in a `OnceLock`.
#[macro_export]
macro_rules! metric_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_noop() {
        let _guard = test_lock();
        set_enabled(false);
        let c = counter("test.disabled.counter");
        let before = c.get();
        c.add(10);
        assert_eq!(c.get(), before, "disabled counter must not move");
        let h = histogram("test.disabled.hist");
        let n = h.count();
        h.record(123);
        assert_eq!(h.count(), n);
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let _guard = test_lock();
        set_enabled(true);
        let c = counter("test.rt.counter");
        let g = gauge("test.rt.gauge");
        let h = histogram("test.rt.hist");
        let c0 = c.get();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), c0 + 4);
        g.set(7);
        g.set_max(5);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count() % 3, 0);
        assert!(h.max_micros() >= 1000);
        set_enabled(false);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let _guard = test_lock();
        set_enabled(true);
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper edge 15
        }
        h.record(100_000); // bucket 17
        assert_eq!(h.quantile_micros(0.5), 15);
        assert!(h.quantile_micros(1.0) >= 100_000 - 1);
        set_enabled(false);
    }

    #[test]
    fn span_timer_records() {
        let _guard = test_lock();
        set_enabled(true);
        let h = histogram("test.span.hist");
        let before = h.count();
        {
            let _t = SpanTimer::start(&h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), before + 1);
        assert!(h.sum_micros() >= 1000);
        set_enabled(false);
        let before = h.count();
        {
            let _t = SpanTimer::start(&h);
        }
        assert_eq!(h.count(), before, "disabled span must not record");
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let _guard = test_lock();
        set_enabled(true);
        counter("test.json.counter").add(2);
        histogram("test.json.hist").record(5);
        let json = snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"test.json.counter\""));
        assert!(json.contains("\"type\": \"histogram\""));
        // Balanced braces (no string values contain braces).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        set_enabled(false);
    }

    #[test]
    fn macros_cache_handles() {
        let a = metric_counter!("test.macro.counter");
        let b = metric_counter!("test.macro.counter");
        assert!(Arc::ptr_eq(a, b) || a.get() == b.get());
        let h1 = metric_histogram!("test.macro.hist");
        let h2 = metric_histogram!("test.macro.hist");
        assert_eq!(h1.count(), h2.count());
        let g = metric_gauge!("test.macro.gauge");
        let _ = g.get();
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
