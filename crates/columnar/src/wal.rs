//! Checksummed write-ahead log for store updates.
//!
//! The table store's temp+rename path makes individual table writes atomic,
//! but an update batch touches *many* tables (triples table, VP partitions,
//! ExtVP reductions, catalog); no sequence of renames makes the group
//! atomic. The WAL closes that gap the classical way: an update batch is
//! first appended here as one checksummed record and fsynced, then applied
//! in memory; a `checkpoint` flushes the dirty tables through temp+rename
//! and truncates the log. Recovery replays whatever the log still holds —
//! replay must therefore be idempotent, which the RDF data model makes easy
//! (graphs are sets; insert-if-absent / delete-if-present).
//!
//! # On-disk format
//!
//! ```text
//! header  := "S2WL" [u8 version=1]
//! record  := [u32 LE payload_len] [u32 LE crc32(payload)] [payload bytes]
//! file    := header record*
//! ```
//!
//! The payload is opaque to this layer (the store serializes its delta
//! batches into it). Replay scans records front to back and stops at the
//! first invalid one — implausible length, short read, or CRC mismatch —
//! recovering the longest valid prefix and truncating the torn tail, the
//! on-disk image an interrupted append leaves behind.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crc32::crc32;
use crate::error::ColumnarError;
use crate::fault::FaultInjector;
use crate::metric_counter;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"S2WL";
/// Current format version.
pub const WAL_VERSION: u8 = 1;
/// Header length: magic + version byte.
const HEADER_LEN: usize = 5;
/// Per-record header: length + CRC, both little-endian u32.
const RECORD_HEADER_LEN: usize = 8;
/// Upper bound on a single record payload (64 MiB). Lengths beyond this are
/// treated as torn-tail garbage during replay rather than attempted.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// Read-only summary of a WAL file (see [`Wal::inspect`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatus {
    /// Valid records currently in the log (pending replay).
    pub records: u64,
    /// Bytes covered by the header and valid records.
    pub valid_bytes: u64,
    /// Trailing bytes past the valid prefix (torn append residue). Replay
    /// truncates these; `verify` reports them.
    pub torn_bytes: u64,
}

/// An append-only, checksummed record log (see module docs).
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    valid_len: u64,
    records: u64,
    faults: Option<Arc<FaultInjector>>,
}

/// Scans `bytes` as a WAL image, returning the decoded record payloads and
/// the byte length of the longest valid prefix (header included).
///
/// Total over arbitrary input: a torn or empty header yields
/// `Ok(([], 0))` ("reinitialize me"), records after the first invalid one
/// are ignored, and only a *wrong* header (full-length magic/version
/// mismatch — some other file) is an error.
pub fn scan_records(bytes: &[u8]) -> Result<(Vec<Vec<u8>>, usize), ColumnarError> {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&WAL_MAGIC);
    header[4] = WAL_VERSION;
    if bytes.len() < HEADER_LEN {
        return if bytes == &header[..bytes.len()] {
            Ok((Vec::new(), 0))
        } else {
            Err(ColumnarError::CorruptFile(
                "WAL header mismatch".to_string(),
            ))
        };
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(ColumnarError::CorruptFile("bad WAL magic".to_string()));
    }
    if bytes[4] != WAL_VERSION {
        return Err(ColumnarError::CorruptFile(format!(
            "unsupported WAL version {}",
            bytes[4]
        )));
    }
    let mut off = HEADER_LEN;
    let mut records = Vec::new();
    while let Some(rec_header) = bytes.get(off..off + RECORD_HEADER_LEN) {
        let len = u32::from_le_bytes(rec_header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rec_header[4..].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break;
        }
        let start = off + RECORD_HEADER_LEN;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        off = start + len as usize;
    }
    Ok((records, off))
}

impl Wal {
    /// Opens (or creates) the WAL at `path` and replays it: returns the log
    /// handle plus the payloads of all valid records, in append order. A
    /// torn tail — the residue of an interrupted append — is truncated away
    /// on the spot, so the file ends exactly at the last valid record.
    pub fn open(path: &Path) -> Result<(Wal, Vec<Vec<u8>>), ColumnarError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (records, valid_len) = scan_records(&bytes)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if valid_len == 0 {
            // Fresh file or torn header: (re)initialize.
            file.set_len(0)?;
            let mut header = [0u8; HEADER_LEN];
            header[..4].copy_from_slice(&WAL_MAGIC);
            header[4] = WAL_VERSION;
            file.write_all(&header)?;
            file.sync_all()?;
        } else if (valid_len as u64) < bytes.len() as u64 {
            // Torn tail past the last valid record: cut it off.
            metric_counter!("columnar.wal.torn_tail_truncations").inc();
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        metric_counter!("columnar.wal.replayed_records").add(records.len() as u64);
        let wal = Wal {
            path: path.to_path_buf(),
            file,
            valid_len: valid_len.max(HEADER_LEN) as u64,
            records: records.len() as u64,
            faults: None,
        };
        Ok((wal, records))
    }

    /// Read-only probe of a WAL file for reporting (`s2rdf verify`): never
    /// creates, truncates or repairs anything. `Ok(None)` when no WAL file
    /// exists.
    pub fn inspect(path: &Path) -> Result<Option<WalStatus>, ColumnarError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (records, valid_len) = scan_records(&bytes)?;
        Ok(Some(WalStatus {
            records: records.len() as u64,
            valid_bytes: valid_len as u64,
            torn_bytes: (bytes.len() - valid_len) as u64,
        }))
    }

    /// Attaches (or detaches) a deterministic fault injector on the append
    /// and truncate paths.
    pub fn set_fault_injector(&mut self, faults: Option<Arc<FaultInjector>>) {
        self.faults = faults;
    }

    /// Appends one record (length + CRC + payload) and fsyncs. Only after
    /// this returns `Ok` is the payload durable; on any error the caller
    /// must treat the process as crashed with respect to this log — the
    /// tail may be torn, and the next [`Wal::open`] will trim it.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), ColumnarError> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(ColumnarError::CorruptFile(format!(
                "WAL record of {} bytes exceeds the {} byte cap",
                payload.len(),
                MAX_RECORD_LEN
            )));
        }
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        if let Some(faults) = &self.faults {
            match faults.wal_append(record.len())? {
                Some(prefix) => {
                    // Torn write: a prefix lands, then the "process dies".
                    self.file.write_all(&record[..prefix])?;
                    let _ = self.file.sync_all();
                    return Err(ColumnarError::Io(std::io::Error::other(
                        "injected torn WAL append",
                    )));
                }
                None => faults.mutate(&mut record),
            }
        }
        self.file.write_all(&record)?;
        self.file.sync_all()?;
        self.valid_len += record.len() as u64;
        self.records += 1;
        metric_counter!("columnar.wal.appends").inc();
        metric_counter!("columnar.wal.append_bytes").add(record.len() as u64);
        Ok(())
    }

    /// Empties the log back to a bare header. Called by `checkpoint` *after*
    /// every dirty table has been flushed; a crash before this point simply
    /// replays the (idempotent) records again.
    pub fn truncate(&mut self) -> Result<(), ColumnarError> {
        if let Some(faults) = &self.faults {
            faults.crash_point("wal.truncate")?;
        }
        self.file.set_len(HEADER_LEN as u64)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::End(0))?;
        self.valid_len = HEADER_LEN as u64;
        self.records = 0;
        Ok(())
    }

    /// Valid records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("s2rdf-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap(); // empty payloads are legal
        wal.append(&[7u8; 1000]).unwrap();
        assert_eq!(wal.records(), 3);
        drop(wal);
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(
            replayed,
            vec![b"alpha".to_vec(), Vec::new(), vec![7u8; 1000]]
        );
        assert_eq!(wal.records(), 3);
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = tmp("truncate");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"data").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        // The handle keeps working after truncation.
        wal.append(b"later").unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![b"later".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"keep me").unwrap();
        drop(wal);
        // Simulate a crash mid-append: garbage tail bytes.
        let mut bytes = fs::read(&path).unwrap();
        let valid = bytes.len();
        bytes.extend_from_slice(&[0xFF; 11]);
        fs::write(&path, &bytes).unwrap();
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![b"keep me".to_vec()]);
        assert_eq!(wal.records(), 1);
        assert_eq!(fs::metadata(&path).unwrap().len(), valid as u64);
    }

    #[test]
    fn inspect_reports_without_repairing() {
        let path = tmp("inspect");
        assert_eq!(Wal::inspect(&path).unwrap(), None);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        drop(wal);
        let valid = fs::metadata(&path).unwrap().len();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        fs::write(&path, &bytes).unwrap();
        let status = Wal::inspect(&path).unwrap().unwrap();
        assert_eq!(status.records, 1);
        assert_eq!(status.valid_bytes, valid);
        assert_eq!(status.torn_bytes, 3);
        // inspect must not have touched the file.
        assert_eq!(fs::metadata(&path).unwrap().len(), valid + 3);
    }

    #[test]
    fn foreign_file_is_rejected_not_destroyed() {
        let path = tmp("foreign");
        fs::write(&path, b"definitely not a WAL").unwrap();
        assert!(Wal::open(&path).is_err());
        assert_eq!(fs::read(&path).unwrap(), b"definitely not a WAL");
    }

    #[test]
    fn torn_header_reinitializes() {
        let path = tmp("torn-header");
        fs::write(&path, &WAL_MAGIC[..2]).unwrap();
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
        wal.append(b"fresh").unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn injected_torn_append_recovers_prefix() {
        let path = tmp("injected-torn");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"durable").unwrap();
        wal.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 11,
            torn_append: 1.0,
            ..FaultConfig::default()
        }))));
        assert!(wal.append(b"lost in the crash").is_err());
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![b"durable".to_vec()]);
    }

    #[test]
    fn kill_switch_blocks_append_and_truncate() {
        let path = tmp("killed");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            kill_after_ops: Some(0),
            ..FaultConfig::default()
        }))));
        assert!(wal.append(b"never lands").is_err());
        assert!(wal.truncate().is_err());
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
    }
}
