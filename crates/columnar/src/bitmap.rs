//! Fixed-length bitmaps over table row indices.
//!
//! Used by the compact ExtVP representation (the S2RDF paper's §8 future
//! work): instead of materializing a semi-join reduction's tuples, store
//! one bit per base-table row — `⌈|VP_p1|/8⌉` bytes instead of 8 bytes per
//! surviving tuple.

use crate::error::ColumnarError;
use crate::table::Table;

/// A fixed-length bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap covering `len` rows.
    pub fn new(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a bitmap of length `len` with the given bits set.
    pub fn from_indices(len: usize, indices: &[u32]) -> Bitmap {
        let mut bm = Bitmap::new(len);
        for &i in indices {
            bm.set(i as usize);
        }
        bm
    }

    /// Number of covered rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// The backing `u64` words (64 rows per word, LSB-first). Bits at or
    /// beyond `len` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable word access for the comparison kernels
    /// ([`crate::ops::kernels`]), which fill whole words at a time. Callers
    /// must keep bits beyond `len` zero.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// An all-ones bitmap covering `len` rows (trailing bits zero).
    pub fn full(len: usize) -> Bitmap {
        let mut bm = Bitmap {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        if let Some(last) = bm.words.last_mut() {
            let rem = len % 64;
            if rem != 0 {
                *last = (1u64 << rem) - 1;
            }
        }
        bm
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Gathers the rows whose bits are set from `table` (which must have
    /// exactly `len` rows) — materializing the reduction this bitmap
    /// encodes.
    pub fn gather(&self, table: &Table) -> Table {
        assert_eq!(table.num_rows(), self.len, "bitmap/table length mismatch");
        let indices: Vec<usize> = self.iter_ones().collect();
        table.gather(&indices)
    }

    /// Bitmap payload size in bytes (the compact representation's storage
    /// cost).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    /// Serializes as `len (u64 LE)` followed by the words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses the [`Bitmap::to_bytes`] format.
    pub fn from_bytes(data: &[u8]) -> Result<Bitmap, ColumnarError> {
        if data.len() < 8 || !(data.len() - 8).is_multiple_of(8) {
            return Err(ColumnarError::CorruptFile("bad bitmap length".into()));
        }
        let len = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
        let words: Vec<u64> = data[8..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if words.len() != len.div_ceil(64) {
            return Err(ColumnarError::CorruptFile(
                "bitmap word count mismatch".into(),
            ));
        }
        Ok(Bitmap { words, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn set_get_count() {
        let mut bm = Bitmap::new(130);
        assert_eq!(bm.count_ones(), 0);
        for i in [0, 63, 64, 129] {
            bm.set(i);
            assert!(bm.get(i));
        }
        assert!(!bm.get(1));
        assert_eq!(bm.count_ones(), 4);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn from_indices_matches_manual() {
        let bm = Bitmap::from_indices(100, &[5, 50, 99]);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![5, 50, 99]);
    }

    #[test]
    fn gather_materializes_rows() {
        let t = Table::from_rows(Schema::new(["s", "o"]), &[[1, 2], [3, 4], [5, 6]]);
        let bm = Bitmap::from_indices(3, &[0, 2]);
        let g = bm.gather(&t);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.row_vec(1), vec![5, 6]);
    }

    #[test]
    fn bytes_roundtrip() {
        let bm = Bitmap::from_indices(1000, &[0, 1, 500, 999]);
        let back = Bitmap::from_bytes(&bm.to_bytes()).unwrap();
        assert_eq!(back, bm);
        assert!(Bitmap::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn compactness() {
        // 1 M rows → 125 KB bitmap, vs 8 B/tuple for a dense reduction.
        let bm = Bitmap::new(1_000_000);
        assert_eq!(bm.byte_size(), 1_000_000usize.div_ceil(64) * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        Bitmap::new(10).set(10);
    }
}
