//! Error type for the columnar substrate.

use std::fmt;

/// Errors raised by table construction, operators, or the table store.
#[derive(Debug)]
pub enum ColumnarError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// Two schemas are incompatible for the attempted operation.
    SchemaMismatch(String),
    /// A persisted table file is corrupt or has an unsupported version.
    CorruptFile(String),
    /// A v2 table file's CRC-32 footer does not match its body: the file
    /// was bit-flipped, truncated or otherwise damaged at rest or in
    /// transit.
    ChecksumMismatch {
        /// Checksum recorded in the file footer.
        expected: u32,
        /// Checksum recomputed over the file body.
        actual: u32,
    },
    /// A named table does not exist in the store.
    NoSuchTable(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ColumnarError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            ColumnarError::CorruptFile(m) => write!(f, "corrupt table file: {m}"),
            ColumnarError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: footer {expected:#010x}, body {actual:#010x}"
            ),
            ColumnarError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            ColumnarError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ColumnarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColumnarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ColumnarError {
    fn from(e: std::io::Error) -> Self {
        ColumnarError::Io(e)
    }
}
