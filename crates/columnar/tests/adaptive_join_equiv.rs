//! Property tests for the adaptive join planner: whatever strategy
//! [`natural_join_adaptive`] picks — serial, broadcast-hash, or partitioned
//! with runtime re-splitting — the result must be indistinguishable from the
//! serial reference join up to row order (multiset semantics, identical
//! schema), for *any* threshold configuration including the degenerate
//! extremes 0 and `usize::MAX`, and for 90 %-hot-key skew inputs.

use proptest::prelude::*;
use s2rdf_columnar::exec::{
    broadcast_natural_join, natural_join_adaptive, partitioned_natural_join, row_multiset,
    BuildSide, JoinConfig, JoinStrategy,
};
use s2rdf_columnar::ops::natural_join;
use s2rdf_columnar::{Schema, Table};

fn mk2(names: [&str; 2], rows: &[(u32, u32)]) -> Table {
    Table::from_columns(
        Schema::new(names),
        vec![
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| r.1).collect(),
        ],
    )
}

/// Deterministic xorshift rows with `skew_pct`% of keys pinned to a hot
/// value — the straggler shape the re-partitioning path exists for.
fn skewed_rows(n: usize, hot_key: u32, skew_pct: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = if (state >> 33) as u32 % 100 < skew_pct {
                hot_key
            } else {
                (state >> 11) as u32 % 64
            };
            (key, i as u32)
        })
        .collect()
}

/// A config that forces every join down the serial path.
fn force_serial() -> JoinConfig {
    JoinConfig {
        serial_row_threshold: usize::MAX,
        ..JoinConfig::default()
    }
}

/// A config that forces every non-degenerate join down the broadcast path.
fn force_broadcast(parts: usize) -> JoinConfig {
    JoinConfig {
        serial_row_threshold: 0,
        broadcast_rows: usize::MAX,
        broadcast_bytes: usize::MAX,
        target_partition_rows: 1,
        max_partitions: parts,
        ..JoinConfig::default()
    }
}

/// A config that forces every non-degenerate join down the partitioned path.
fn force_partitioned(parts: usize) -> JoinConfig {
    JoinConfig {
        serial_row_threshold: 0,
        broadcast_rows: 0,
        broadcast_bytes: 0,
        target_partition_rows: 1,
        max_partitions: parts,
        ..JoinConfig::default()
    }
}

proptest! {
    /// Threshold sweep including both extremes: whatever strategy the
    /// config selects, the multiset equals the serial reference and the
    /// decision record is internally consistent (build side = smaller
    /// input, out_rows = actual output).
    #[test]
    fn adaptive_matches_serial_across_thresholds(
        left in proptest::collection::vec((0u32..6, 0u32..1000), 0..200),
        right in proptest::collection::vec((0u32..6, 0u32..1000), 0..200),
        serial_row_threshold in prop_oneof![Just(0usize), Just(64usize), Just(usize::MAX)],
        broadcast_rows in prop_oneof![Just(0usize), Just(32usize), Just(usize::MAX)],
        broadcast_bytes in prop_oneof![Just(0usize), Just(usize::MAX)],
        target_partition_rows in prop_oneof![Just(1usize), Just(16usize), Just(1usize << 14)],
        max_partitions in 0usize..9,
    ) {
        let cfg = JoinConfig {
            serial_row_threshold,
            broadcast_rows,
            broadcast_bytes,
            target_partition_rows,
            max_partitions,
            ..JoinConfig::default()
        };
        let l = mk2(["k", "a"], &left);
        let r = mk2(["k", "b"], &right);
        let (out, decision) = natural_join_adaptive(&l, &r, &cfg);
        let reference = natural_join(&l, &r);
        prop_assert_eq!(out.schema(), reference.schema());
        prop_assert_eq!(row_multiset(&out), row_multiset(&reference));
        prop_assert_eq!(decision.out_rows, out.num_rows());
        prop_assert!(decision.partitions >= 1);
        let (expect_build, expect_probe) = if l.num_rows() <= r.num_rows() {
            (BuildSide::Left, r.num_rows())
        } else {
            (BuildSide::Right, l.num_rows())
        };
        prop_assert_eq!(decision.build_side, expect_build);
        prop_assert_eq!(decision.probe_rows, expect_probe);
        prop_assert_eq!(
            decision.build_rows,
            l.num_rows().min(r.num_rows())
        );
    }

    /// All three forced strategies agree pairwise on the same inputs.
    #[test]
    fn forced_strategies_agree(
        left in proptest::collection::vec((0u32..8, 0u32..1000), 1..200),
        right in proptest::collection::vec((0u32..8, 0u32..1000), 1..200),
        parts in 2usize..9,
    ) {
        let l = mk2(["k", "a"], &left);
        let r = mk2(["k", "b"], &right);
        let (serial, d_serial) = natural_join_adaptive(&l, &r, &force_serial());
        let (bcast, d_bcast) = natural_join_adaptive(&l, &r, &force_broadcast(parts));
        let (parted, d_parted) = natural_join_adaptive(&l, &r, &force_partitioned(parts));
        prop_assert_eq!(d_serial.strategy, JoinStrategy::Serial);
        prop_assert_eq!(d_bcast.strategy, JoinStrategy::Broadcast);
        // Partitioned degrades to serial only when the probe side has too
        // few rows to fill two partitions.
        if l.num_rows().max(r.num_rows()) >= 2 {
            prop_assert_eq!(d_parted.strategy, JoinStrategy::Partitioned);
        }
        prop_assert_eq!(serial.schema(), bcast.schema());
        prop_assert_eq!(serial.schema(), parted.schema());
        let reference = row_multiset(&serial);
        prop_assert_eq!(&row_multiset(&bcast), &reference);
        prop_assert_eq!(&row_multiset(&parted), &reference);
    }

    /// The broadcast-hash join itself, across chunk counts, including a
    /// two-column key (the wide-index path).
    #[test]
    fn broadcast_join_matches_serial(
        left in proptest::collection::vec((0u32..6, 0u32..1000), 0..200),
        right in proptest::collection::vec((0u32..6, 0u32..1000), 0..200),
        parts in 1usize..17,
    ) {
        let l = mk2(["k", "a"], &left);
        let r = mk2(["k", "b"], &right);
        let out = broadcast_natural_join(&l, &r, parts);
        let reference = natural_join(&l, &r);
        prop_assert_eq!(out.schema(), reference.schema());
        prop_assert_eq!(row_multiset(&out), row_multiset(&reference));
    }

    /// Forced runtime re-partitioning on 90 %-hot-key skew preserves the
    /// result multiset for any straggler bound — including bounds tight
    /// enough that the planner keeps dissolving partitions until the
    /// re-split backstop.
    #[test]
    fn forced_resplit_preserves_results_on_skew(
        n_left in 100usize..400,
        n_right in 100usize..400,
        parts in 2usize..9,
        straggler_pct in prop_oneof![Just(50usize), Just(110usize), Just(150usize)],
        seed in any::<u64>(),
    ) {
        let l = mk2(["k", "a"], &skewed_rows(n_left, 7, 90, seed));
        let r = mk2(["k", "b"], &skewed_rows(n_right, 7, 90, seed ^ 0xDEAD_BEEF));
        let cfg = JoinConfig {
            resplit_straggler_pct: straggler_pct,
            max_resplits: 8,
            ..force_partitioned(parts)
        };
        let (out, decision) = natural_join_adaptive(&l, &r, &cfg);
        prop_assert!(decision.resplits <= cfg.max_resplits);
        let reference = natural_join(&l, &r);
        prop_assert_eq!(out.schema(), reference.schema());
        prop_assert_eq!(row_multiset(&out), row_multiset(&reference));
    }
}

/// Build side is chosen by cardinality, not operand position: the smaller
/// input builds whether it arrives on the left or the right.
#[test]
fn build_side_by_cardinality_not_position() {
    let small = mk2(["k", "a"], &[(1, 10), (2, 20)]);
    let big = mk2(
        ["k", "b"],
        &(0..100).map(|i| (i % 5, i)).collect::<Vec<_>>(),
    );
    let cfg = force_broadcast(4);
    let (_, d) = natural_join_adaptive(&small, &big, &cfg);
    assert_eq!(d.build_side, BuildSide::Left);
    assert_eq!(d.build_rows, 2);
    let (_, d) = natural_join_adaptive(&big, &small, &cfg);
    assert_eq!(d.build_side, BuildSide::Right);
    assert_eq!(d.build_rows, 2);
}

/// The degenerate threshold extremes, pinned: `usize::MAX` serial threshold
/// always yields the serial plan; a zero serial threshold with zero
/// broadcast bounds always yields the partitioned plan (given ≥2 probe
/// rows); `usize::MAX` broadcast bounds always broadcast.
#[test]
fn threshold_extremes_pin_the_strategy() {
    let l = mk2(["k", "a"], &skewed_rows(500, 3, 40, 0x5EED));
    let r = mk2(["k", "b"], &skewed_rows(400, 3, 40, 0xF00D));
    let (_, d) = natural_join_adaptive(&l, &r, &force_serial());
    assert_eq!(d.strategy, JoinStrategy::Serial);
    assert_eq!(d.partitions, 1);
    let (_, d) = natural_join_adaptive(&l, &r, &force_broadcast(4));
    assert_eq!(d.strategy, JoinStrategy::Broadcast);
    assert!(d.partitions >= 2);
    let (_, d) = natural_join_adaptive(&l, &r, &force_partitioned(4));
    assert_eq!(d.strategy, JoinStrategy::Partitioned);
    assert!(d.partitions >= 2);
}

/// A straggler bound below any achievable balance forces re-splits up to
/// the backstop; the result is still exactly the serial multiset.
#[test]
fn impossible_straggler_bound_hits_resplit_backstop() {
    let l = mk2(["k", "a"], &skewed_rows(2_000, 7, 90, 0xACE1));
    let r = mk2(["k", "b"], &skewed_rows(1_500, 7, 90, 0xBEE5));
    let cfg = JoinConfig {
        resplit_straggler_pct: 50, // largest ≤ half the median: unsatisfiable
        max_resplits: 3,
        ..force_partitioned(8)
    };
    let ((out, resplits), reference) = (
        partitioned_natural_join(&l, &r, 8, &cfg),
        natural_join(&l, &r),
    );
    assert_eq!(resplits, 3, "unsatisfiable bound must exhaust the backstop");
    assert_eq!(out.schema(), reference.schema());
    assert_eq!(row_multiset(&out), row_multiset(&reference));
}
