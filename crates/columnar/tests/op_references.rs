//! Property tests: the optimized operators match naive reference
//! implementations on arbitrary inputs.

use proptest::prelude::*;

use s2rdf_columnar::exec::{par_natural_join, row_multiset};
use s2rdf_columnar::ops::{
    distinct, hash_join_on, left_outer_join, natural_join, semi_join_on, union,
};
use s2rdf_columnar::{Schema, Table, NULL_ID};

fn table(cols: &'static [&'static str], rows: Vec<Vec<u32>>) -> Table {
    Table::from_rows(Schema::new(cols.iter().map(|c| c.to_string())), &rows)
}

fn arb_rows(width: usize, card: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0..card, width), 0..50)
}

/// Naive nested-loop natural join on one shared column ("j").
fn reference_join(left: &Table, right: &Table) -> Vec<Vec<u32>> {
    let lj = left.schema().index_of("j").unwrap();
    let rj = right.schema().index_of("j").unwrap();
    let mut out = Vec::new();
    for l in 0..left.num_rows() {
        for r in 0..right.num_rows() {
            if left.value(l, lj) == right.value(r, rj) {
                let mut row = left.row_vec(l);
                for c in 0..right.schema().len() {
                    if c != rj {
                        row.push(right.value(r, c));
                    }
                }
                out.push(row);
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_join_matches_nested_loop(
        l in arb_rows(2, 12),
        r in arb_rows(2, 12),
    ) {
        let left = table(&["a", "j"], l);
        let right = table(&["j", "b"], r);
        let expected = reference_join(&left, &right);
        prop_assert_eq!(row_multiset(&natural_join(&left, &right)), expected.clone());
        // The keyed variant and the partitioned variant agree too.
        let keyed = hash_join_on(&left, &right, &[(1, 0)]);
        prop_assert_eq!(row_multiset(&keyed), expected.clone());
        for parts in [2, 5] {
            prop_assert_eq!(
                row_multiset(&par_natural_join(&left, &right, parts)),
                expected.clone()
            );
        }
    }

    #[test]
    fn left_outer_join_covers_every_left_row(
        l in arb_rows(2, 8),
        r in arb_rows(2, 8),
    ) {
        let left = table(&["a", "j"], l);
        let right = table(&["j", "b"], r);
        let out = left_outer_join(&left, &right);
        // Inner part matches the inner join; the rest are NULL-padded.
        let inner = natural_join(&left, &right).num_rows();
        let padded = (0..out.num_rows())
            .filter(|&i| out.value(i, 2) == NULL_ID)
            .count();
        prop_assert_eq!(out.num_rows(), inner + padded);
        // Every left row appears at least once.
        let mut seen = vec![false; left.num_rows()];
        for i in 0..out.num_rows() {
            for (li, s) in seen.iter_mut().enumerate() {
                if left.value(li, 0) == out.value(i, 0) && left.value(li, 1) == out.value(i, 1) {
                    *s = true;
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn union_preserves_cardinality_and_distinct_is_idempotent(
        l in arb_rows(2, 6),
        r in arb_rows(2, 6),
    ) {
        let left = table(&["a", "b"], l);
        let right = table(&["b", "c"], r);
        let u = union(&left, &right);
        prop_assert_eq!(u.num_rows(), left.num_rows() + right.num_rows());
        let d = distinct(&u);
        prop_assert!(d.num_rows() <= u.num_rows());
        prop_assert_eq!(row_multiset(&distinct(&d)), row_multiset(&d));
        // Distinct keeps exactly the set of rows.
        let mut set: Vec<Vec<u32>> = row_multiset(&u);
        set.dedup();
        prop_assert_eq!(row_multiset(&d), set);
    }

    /// The wide-key (3+ shared columns, `Vec<u32>` keys with a reused probe
    /// scratch buffer) join path agrees with the narrow-key (`u64`-packed)
    /// path on the same data, with the composite key packed bijectively
    /// into a single column.
    #[test]
    fn wide_key_join_matches_narrow_key_join(
        l in arb_rows(4, 4),
        r in arb_rows(4, 4),
    ) {
        // Shared columns j1,j2,j3 → the Wide KeyIndex arm.
        let left = table(&["a", "j1", "j2", "j3"], l.clone());
        let right = table(&["j1", "j2", "j3", "b"], r.clone());
        let wide = natural_join(&left, &right);

        // Same join with (j1,j2,j3) packed into one key column k = j1·16+j2·4+j3
        // (cardinality 4 makes the packing bijective) → the Narrow arm.
        let pack = |j1: u32, j2: u32, j3: u32| j1 * 16 + j2 * 4 + j3;
        let left_packed = table(
            &["a", "k"],
            l.iter().map(|row| vec![row[0], pack(row[1], row[2], row[3])]).collect(),
        );
        let right_packed = table(
            &["k", "b"],
            r.iter().map(|row| vec![pack(row[0], row[1], row[2]), row[3]]).collect(),
        );
        let narrow = natural_join(&left_packed, &right_packed);

        // Project the wide result to (a, packed-key, b) and compare multisets.
        let wide_as_narrow: Vec<Vec<u32>> = (0..wide.num_rows())
            .map(|i| {
                let row = wide.row_vec(i);
                vec![row[0], pack(row[1], row[2], row[3]), row[4]]
            })
            .collect();
        let mut wide_sorted = wide_as_narrow;
        wide_sorted.sort_unstable();
        prop_assert_eq!(wide_sorted, row_multiset(&narrow));
    }

    /// `semi_join_on` (hash-set probe) equals the definitional filter.
    #[test]
    fn semi_join_matches_filter_reference(
        l in arb_rows(2, 10),
        r in arb_rows(2, 10),
    ) {
        let left = table(&["s", "o"], l.clone());
        let right = table(&["s", "o"], r.clone());
        let reduced = semi_join_on(&left, 1, &right, 0);
        let expected: Vec<Vec<u32>> = l
            .iter()
            .filter(|row| r.iter().any(|rr| rr[0] == row[1]))
            .cloned()
            .collect();
        let mut expected_sorted = expected;
        expected_sorted.sort_unstable();
        prop_assert_eq!(row_multiset(&reduced), expected_sorted);
    }
}
