//! Property tests: the optimized operators match naive reference
//! implementations on arbitrary inputs.

use proptest::prelude::*;

use s2rdf_columnar::exec::{par_natural_join, row_multiset};
use s2rdf_columnar::ops::{distinct, hash_join_on, left_outer_join, natural_join, union};
use s2rdf_columnar::{Schema, Table, NULL_ID};

fn table(cols: &'static [&'static str], rows: Vec<Vec<u32>>) -> Table {
    Table::from_rows(Schema::new(cols.iter().map(|c| c.to_string())), &rows)
}

fn arb_rows(width: usize, card: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0..card, width), 0..50)
}

/// Naive nested-loop natural join on one shared column ("j").
fn reference_join(left: &Table, right: &Table) -> Vec<Vec<u32>> {
    let lj = left.schema().index_of("j").unwrap();
    let rj = right.schema().index_of("j").unwrap();
    let mut out = Vec::new();
    for l in 0..left.num_rows() {
        for r in 0..right.num_rows() {
            if left.value(l, lj) == right.value(r, rj) {
                let mut row = left.row_vec(l);
                for c in 0..right.schema().len() {
                    if c != rj {
                        row.push(right.value(r, c));
                    }
                }
                out.push(row);
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_join_matches_nested_loop(
        l in arb_rows(2, 12),
        r in arb_rows(2, 12),
    ) {
        let left = table(&["a", "j"], l);
        let right = table(&["j", "b"], r);
        let expected = reference_join(&left, &right);
        prop_assert_eq!(row_multiset(&natural_join(&left, &right)), expected.clone());
        // The keyed variant and the partitioned variant agree too.
        let keyed = hash_join_on(&left, &right, &[(1, 0)]);
        prop_assert_eq!(row_multiset(&keyed), expected.clone());
        for parts in [2, 5] {
            prop_assert_eq!(
                row_multiset(&par_natural_join(&left, &right, parts)),
                expected.clone()
            );
        }
    }

    #[test]
    fn left_outer_join_covers_every_left_row(
        l in arb_rows(2, 8),
        r in arb_rows(2, 8),
    ) {
        let left = table(&["a", "j"], l);
        let right = table(&["j", "b"], r);
        let out = left_outer_join(&left, &right);
        // Inner part matches the inner join; the rest are NULL-padded.
        let inner = natural_join(&left, &right).num_rows();
        let padded = (0..out.num_rows())
            .filter(|&i| out.value(i, 2) == NULL_ID)
            .count();
        prop_assert_eq!(out.num_rows(), inner + padded);
        // Every left row appears at least once.
        let mut seen = vec![false; left.num_rows()];
        for i in 0..out.num_rows() {
            for (li, s) in seen.iter_mut().enumerate() {
                if left.value(li, 0) == out.value(i, 0) && left.value(li, 1) == out.value(i, 1) {
                    *s = true;
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn union_preserves_cardinality_and_distinct_is_idempotent(
        l in arb_rows(2, 6),
        r in arb_rows(2, 6),
    ) {
        let left = table(&["a", "b"], l);
        let right = table(&["b", "c"], r);
        let u = union(&left, &right);
        prop_assert_eq!(u.num_rows(), left.num_rows() + right.num_rows());
        let d = distinct(&u);
        prop_assert!(d.num_rows() <= u.num_rows());
        prop_assert_eq!(row_multiset(&distinct(&d)), row_multiset(&d));
        // Distinct keeps exactly the set of rows.
        let mut set: Vec<Vec<u32>> = row_multiset(&u);
        set.dedup();
        prop_assert_eq!(row_multiset(&d), set);
    }
}
