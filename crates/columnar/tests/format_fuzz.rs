//! Adversarial tests for the on-disk table format (v2, checksummed).
//!
//! Three properties the store depends on for fault tolerance:
//!
//! 1. `deserialize_table` is *total*: arbitrary input bytes produce an
//!    `Err`, never a panic or an unbounded allocation.
//! 2. Any single-byte mutation or truncation of a valid v2 file is
//!    detected — the CRC-32 footer (and the trailing-bytes check, which
//!    closes the v2→v1 version-byte downgrade hole) guarantees corrupt
//!    data never decodes silently.
//! 3. Legacy v1 files (no footer) written before the checksum existed
//!    still load byte-for-byte identically, from a checked-in fixture.

use proptest::prelude::*;
use s2rdf_columnar::io::{deserialize_table, serialize_table, TableStore};
use s2rdf_columnar::{ColumnarError, Schema, Table};

/// A small table exercising both plain and RLE column encodings.
fn sample() -> Table {
    Table::from_columns(
        Schema::new(["s", "p", "o"]),
        vec![
            (0..64).collect(),                    // plain
            std::iter::repeat_n(7, 64).collect(), // RLE
            (0..64).map(|i| i / 8).collect(),     // RLE runs of 8
        ],
    )
}

/// The checked-in v1 fixture (written before the checksum footer existed)
/// must keep loading, and re-serializing it must produce a v2 file.
#[test]
fn v1_fixture_still_loads() {
    let bytes: &[u8] = include_bytes!("fixtures/v1_sample.s2ct");
    assert_eq!(bytes[4], 1, "fixture must stay a v1 file");
    let table = deserialize_table(bytes).expect("v1 fixture must load");
    let expected = Table::from_columns(
        Schema::new(["s", "o"]),
        vec![vec![1, 2, 3], vec![10, 10, 20]],
    );
    assert_eq!(table, expected);
    // Round-tripping upgrades to the current checksummed format.
    let v2 = serialize_table(&table);
    assert_eq!(v2[4], 2);
    assert_eq!(deserialize_table(&v2).unwrap(), expected);
}

/// Flipping the version byte of a v2 file down to v1 must not bypass
/// checksum verification (the footer becomes trailing garbage).
#[test]
fn version_downgrade_is_rejected() {
    let mut bytes = serialize_table(&sample());
    assert_eq!(bytes[4], 2);
    bytes[4] = 1;
    assert!(deserialize_table(&bytes).is_err());
}

/// Kill-and-reopen: simulate a crash that tears one table file at every
/// possible truncation point. On reopen, every manifest entry either loads
/// the intact table or fails with a structured error — never panics, never
/// yields wrong data.
#[test]
fn torn_write_reopen_loads_or_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("s2ct-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (victim_file, original) = {
        let mut store = TableStore::open(&dir).unwrap();
        store.save("VP/follows", &sample()).unwrap();
        store.save("VP/likes", &sample()).unwrap();
        let manifest = std::fs::read_to_string(dir.join("manifest.tsv")).unwrap();
        let file = manifest
            .lines()
            .find(|l| l.starts_with("VP/follows\t"))
            .and_then(|l| l.split('\t').nth(1))
            .expect("manifest entry for VP/follows")
            .to_string();
        (file.clone(), std::fs::read(dir.join(&file)).unwrap())
    };
    for cut in 0..original.len() {
        std::fs::write(dir.join(&victim_file), &original[..cut]).unwrap();
        let store = TableStore::open(&dir).unwrap();
        // The untouched table always survives the reopen…
        assert_eq!(*store.load("VP/likes").unwrap(), sample());
        // …and the torn one fails loudly rather than decoding garbage.
        match store.load("VP/follows") {
            Err(ColumnarError::ChecksumMismatch { .. } | ColumnarError::CorruptFile(_)) => {}
            Err(other) => panic!("unexpected error class at cut {cut}: {other:?}"),
            Ok(t) => panic!("torn file decoded at cut {cut}: {} rows", t.num_rows()),
        }
    }
    // Restoring the full bytes restores the table: detection is stateless.
    std::fs::write(dir.join(&victim_file), &original).unwrap();
    let store = TableStore::open(&dir).unwrap();
    assert_eq!(*store.load("VP/follows").unwrap(), sample());
    assert!(store.verify_all().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Totality over arbitrary bytes.
    #[test]
    fn prop_arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = deserialize_table(&data);
    }

    /// Totality over byte soup that passes the magic/version gate, so the
    /// fuzzer spends its budget inside the header and column decoders.
    #[test]
    fn prop_framed_garbage_never_panics(
        version in 0u8..4,
        tail in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut data = b"S2CT".to_vec();
        data.push(version);
        data.extend_from_slice(&tail);
        let _ = deserialize_table(&data);
    }

    /// Every single-byte mutation of a valid v2 file must be detected.
    #[test]
    fn prop_single_byte_mutation_errors(idx in any::<usize>(), xor in 1u8..=255) {
        let mut bytes = serialize_table(&sample());
        let idx = idx % bytes.len();
        bytes[idx] ^= xor;
        prop_assert!(
            deserialize_table(&bytes).is_err(),
            "mutation at byte {idx} (xor {xor:#04x}) decoded silently"
        );
    }

    /// Every proper-prefix truncation of a valid v2 file must be detected.
    #[test]
    fn prop_truncation_errors(cut in any::<usize>()) {
        let bytes = serialize_table(&sample());
        let cut = cut % bytes.len(); // strictly shorter than the original
        prop_assert!(deserialize_table(&bytes[..cut]).is_err());
    }
}
