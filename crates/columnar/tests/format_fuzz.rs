//! Adversarial tests for the on-disk formats: the columnar table format
//! (v3 chunked, checksummed; v2/v1 legacy) and the write-ahead log.
//!
//! Properties the store depends on for fault tolerance:
//!
//! 1. `deserialize_table` is *total*: arbitrary input bytes produce an
//!    `Err`, never a panic or an unbounded allocation.
//! 2. Any single-byte mutation or truncation of a valid current-format
//!    file is detected — the whole-file CRC-32 footer (and the
//!    trailing-bytes check, which closes version-byte downgrade holes)
//!    guarantees corrupt data never decodes silently.
//! 3. Legacy v1 files (no footer) written before the checksum existed
//!    still load byte-for-byte identically, from a checked-in fixture.
//! 4. Every chunk encoding round-trips arbitrary `u32` columns
//!    bit-exactly, at both the chunk and whole-file level.
//! 5. WAL replay (`wal::scan_records`) is total too, and any damage —
//!    truncation at an arbitrary offset, a bit flip, duplicated tail
//!    bytes — recovers a *prefix* of the original records, never panics,
//!    never fabricates a record.

use proptest::prelude::*;
use s2rdf_columnar::chunk::{decode_chunk_body, encode_chunk};
use s2rdf_columnar::io::{deserialize_table, serialize_table, serialize_table_opts, TableStore};
use s2rdf_columnar::wal::{scan_records, WAL_MAGIC, WAL_VERSION};
use s2rdf_columnar::{ColumnarError, Schema, Table, Wal, WriteOptions};

/// A small table exercising both plain and RLE column encodings.
fn sample() -> Table {
    Table::from_columns(
        Schema::new(["s", "p", "o"]),
        vec![
            (0..64).collect(),                    // plain
            std::iter::repeat_n(7, 64).collect(), // RLE
            (0..64).map(|i| i / 8).collect(),     // RLE runs of 8
        ],
    )
}

/// The checked-in v1 fixture (written before the checksum footer existed)
/// must keep loading, and re-serializing it must produce a current-format
/// (v3 chunked) file.
#[test]
fn v1_fixture_still_loads() {
    let bytes: &[u8] = include_bytes!("fixtures/v1_sample.s2ct");
    assert_eq!(bytes[4], 1, "fixture must stay a v1 file");
    let table = deserialize_table(bytes).expect("v1 fixture must load");
    let expected = Table::from_columns(
        Schema::new(["s", "o"]),
        vec![vec![1, 2, 3], vec![10, 10, 20]],
    );
    assert_eq!(table, expected);
    // Round-tripping upgrades to the current checksummed chunked format.
    let v3 = serialize_table(&table);
    assert_eq!(v3[4], 3);
    assert_eq!(deserialize_table(&v3).unwrap(), expected);
}

/// Flipping the version byte of a current-format file down to v2 or v1
/// must not bypass checksum verification (the CRC covers the version
/// byte, and the v1 trailing-bytes check rejects the leftover footer).
#[test]
fn version_downgrade_is_rejected() {
    let bytes = serialize_table(&sample());
    assert_eq!(bytes[4], 3);
    for down in [1u8, 2] {
        let mut m = bytes.clone();
        m[4] = down;
        assert!(deserialize_table(&m).is_err(), "downgrade to v{down}");
    }
}

/// Kill-and-reopen: simulate a crash that tears one table file at every
/// possible truncation point. On reopen, every manifest entry either loads
/// the intact table or fails with a structured error — never panics, never
/// yields wrong data.
#[test]
fn torn_write_reopen_loads_or_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("s2ct-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (victim_file, original) = {
        let mut store = TableStore::open(&dir).unwrap();
        store.save("VP/follows", &sample()).unwrap();
        store.save("VP/likes", &sample()).unwrap();
        let manifest = std::fs::read_to_string(dir.join("manifest.tsv")).unwrap();
        let file = manifest
            .lines()
            .find(|l| l.starts_with("VP/follows\t"))
            .and_then(|l| l.split('\t').nth(1))
            .expect("manifest entry for VP/follows")
            .to_string();
        (file.clone(), std::fs::read(dir.join(&file)).unwrap())
    };
    for cut in 0..original.len() {
        std::fs::write(dir.join(&victim_file), &original[..cut]).unwrap();
        let store = TableStore::open(&dir).unwrap();
        // The untouched table always survives the reopen…
        assert_eq!(*store.load("VP/likes").unwrap(), sample());
        // …and the torn one fails loudly rather than decoding garbage.
        match store.load("VP/follows") {
            Err(ColumnarError::ChecksumMismatch { .. } | ColumnarError::CorruptFile(_)) => {}
            Err(other) => panic!("unexpected error class at cut {cut}: {other:?}"),
            Ok(t) => panic!("torn file decoded at cut {cut}: {} rows", t.num_rows()),
        }
    }
    // Restoring the full bytes restores the table: detection is stateless.
    std::fs::write(dir.join(&victim_file), &original).unwrap();
    let store = TableStore::open(&dir).unwrap();
    assert_eq!(*store.load("VP/follows").unwrap(), sample());
    assert!(store.verify_all().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Builds a valid WAL image holding the given payloads.
fn wal_image(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = WAL_MAGIC.to_vec();
    out.push(WAL_VERSION);
    for p in payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&s2rdf_columnar::crc32::crc32(p).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// A duplicated tail record — the image a retried append could leave — is
/// simply two valid records; replay returns both and idempotent apply
/// makes the duplicate harmless.
#[test]
fn wal_duplicate_tail_record_is_tolerated() {
    let payloads = vec![b"first".to_vec(), b"second".to_vec()];
    let mut bytes = wal_image(&payloads);
    let solo = wal_image(&payloads[1..]);
    bytes.extend_from_slice(&solo[5..]); // append the second record again
    let (records, valid) = scan_records(&bytes).unwrap();
    assert_eq!(
        records,
        vec![b"first".to_vec(), b"second".to_vec(), b"second".to_vec()]
    );
    assert_eq!(valid, bytes.len());
}

/// End-to-end kill-and-reopen over the WAL file: tear it at every byte
/// offset; `Wal::open` must recover the longest valid record prefix,
/// truncate the residue, and accept new appends.
#[test]
fn wal_torn_at_every_offset_recovers_prefix() {
    let dir = std::env::temp_dir().join(format!("s2wl-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");
    let payloads = vec![b"one".to_vec(), vec![0xAB; 100], b"three".to_vec()];
    let full = wal_image(&payloads);
    // Full extents of each record, for computing the expected survivors.
    let mut ends = vec![5usize];
    for p in &payloads {
        ends.push(ends.last().unwrap() + 8 + p.len());
    }
    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        let expect = ends.iter().filter(|&&e| e > 5 && e <= cut).count();
        assert_eq!(replayed.len(), expect, "cut {cut}");
        assert_eq!(replayed, payloads[..expect].to_vec(), "cut {cut}");
        // The recovered log keeps working.
        wal.append(b"after recovery").unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), expect + 1);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Totality over arbitrary bytes.
    #[test]
    fn prop_arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = deserialize_table(&data);
    }

    /// WAL replay is total over arbitrary bytes: it recovers some prefix
    /// or rejects the file, but never panics and never over-reads.
    #[test]
    fn prop_wal_scan_is_total(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        if let Ok((records, valid)) = scan_records(&data) {
            prop_assert!(valid <= data.len());
            let replayed: usize =
                records.iter().map(|r| 8 + r.len()).sum::<usize>() + 5;
            prop_assert_eq!(replayed, valid.max(5));
        }
    }

    /// Truncating a valid WAL image anywhere recovers exactly the records
    /// that fit wholly inside the kept prefix.
    #[test]
    fn prop_wal_truncation_recovers_longest_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..6),
        cut in any::<usize>(),
    ) {
        let full = wal_image(&payloads);
        let cut = cut % (full.len() + 1);
        let mut ends = vec![5usize];
        for p in &payloads {
            ends.push(ends.last().unwrap() + 8 + p.len());
        }
        match scan_records(&full[..cut]) {
            Ok((records, valid)) => {
                let expect = ends.iter().filter(|&&e| e > 5 && e <= cut).count();
                prop_assert_eq!(records.len(), expect);
                prop_assert_eq!(records, payloads[..expect].to_vec());
                // A cut inside the header reads as "reinitialize" (valid
                // length 0); past it, the longest whole-record prefix.
                let expect_valid = if cut < 5 { 0 } else { *ends[..=expect].last().unwrap() };
                prop_assert_eq!(valid, expect_valid);
            }
            // A cut inside the 5-byte header that still matches it is
            // "reinitialize"; only a *mismatching* header may error, and
            // a prefix of the true header never mismatches.
            Err(_) => prop_assert!(false, "prefix of a valid WAL must scan"),
        }
    }

    /// A single flipped bit anywhere in a WAL image never panics and never
    /// corrupts the records *before* the flip.
    #[test]
    fn prop_wal_bit_flip_never_panics(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = wal_image(&payloads);
        let idx = idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        if let Ok((records, _)) = scan_records(&bytes) {
            // Records wholly before the flipped byte must survive intact.
            let mut end = 5usize;
            let mut intact = 0;
            for p in &payloads {
                end += 8 + p.len();
                if end <= idx {
                    intact += 1;
                }
            }
            prop_assert!(records.len() >= intact.min(payloads.len()));
            for (r, p) in records.iter().zip(&payloads).take(intact) {
                prop_assert_eq!(r, p);
            }
        }
    }

    /// Totality over byte soup that passes the magic/version gate, so the
    /// fuzzer spends its budget inside the header and column decoders.
    #[test]
    fn prop_framed_garbage_never_panics(
        version in 0u8..4,
        tail in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut data = b"S2CT".to_vec();
        data.push(version);
        data.extend_from_slice(&tail);
        let _ = deserialize_table(&data);
    }

    /// Every single-byte mutation of a valid v2 file must be detected.
    #[test]
    fn prop_single_byte_mutation_errors(idx in any::<usize>(), xor in 1u8..=255) {
        let mut bytes = serialize_table(&sample());
        let idx = idx % bytes.len();
        bytes[idx] ^= xor;
        prop_assert!(
            deserialize_table(&bytes).is_err(),
            "mutation at byte {idx} (xor {xor:#04x}) decoded silently"
        );
    }

    /// Every proper-prefix truncation of a valid v2 file must be detected.
    #[test]
    fn prop_truncation_errors(cut in any::<usize>()) {
        let bytes = serialize_table(&sample());
        let cut = cut % bytes.len(); // strictly shorter than the original
        prop_assert!(deserialize_table(&bytes[..cut]).is_err());
    }

    /// Arbitrary `u32` columns — any values, any length — round-trip
    /// bit-exactly through the full chunked serializer, across chunk
    /// boundaries (chunk_rows 1..=17 forces many chunks and ragged tails).
    #[test]
    fn prop_v3_roundtrips_arbitrary_columns(
        col in proptest::collection::vec(any::<u32>(), 0..300),
        chunk_rows in 1usize..=17,
        bloom in any::<bool>(),
    ) {
        let table = Table::from_columns(Schema::new(["c"]), vec![col]);
        let bytes = serialize_table_opts(&table, &WriteOptions { chunk_rows, bloom });
        prop_assert_eq!(deserialize_table(&bytes).unwrap(), table);
    }

    /// Every chunk encoding round-trips the shapes that select it:
    /// constant runs (CONST/RLE), monotone sequences (DELTA), narrow
    /// ranges (FOR) and arbitrary values (PLAIN), all checked bit-exactly
    /// at the chunk level.
    #[test]
    fn prop_chunk_encodings_roundtrip(
        shape in 0usize..4,
        base in any::<u32>(),
        deltas in proptest::collection::vec(0u32..64, 1..200),
    ) {
        let vals: Vec<u32> = match shape {
            0 => deltas.iter().map(|_| base).collect(), // constant → CONST
            1 => {
                // Few long runs → RLE.
                deltas.iter().enumerate()
                    .map(|(i, _)| base.wrapping_add((i / 64) as u32)).collect()
            }
            2 => {
                // Monotone non-decreasing → DELTA.
                let mut acc = base / 2;
                deltas.iter().map(|&d| { acc = acc.saturating_add(d); acc }).collect()
            }
            _ => deltas.iter().map(|&d| base.wrapping_add(d)).collect(), // narrow → FOR
        };
        let (enc, body) = encode_chunk(&vals);
        prop_assert!(enc <= 4, "unknown encoding {enc}");
        prop_assert_eq!(decode_chunk_body(enc, &body, vals.len()).unwrap(), vals);
    }
}
