//! Concurrency stress tests for the shared worker pool, plus the
//! `S2RDF_THREADS=1` serial-equivalence property: a single-worker pool must
//! make every join strategy behave exactly like the serial executor.
//!
//! The stress tests exercise the pool's invariants under contention — no
//! lost tasks, results in submission order, steals actually happen under
//! rigged skew, shutdown is idempotent and leaves `run` usable (inline).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use s2rdf_columnar::exec::{
    natural_join_adaptive, par_natural_join, row_multiset, JoinConfig, JoinStrategy,
};
use s2rdf_columnar::ops::natural_join;
use s2rdf_columnar::{pool, Schema, Table, WorkerPool};

/// A leaked single-worker pool: `with_workers(1)` spawns no threads and runs
/// every task inline on the caller, in submission order — the in-process
/// stand-in for launching with `S2RDF_THREADS=1`.
fn serial_pool() -> &'static WorkerPool {
    Box::leak(Box::new(WorkerPool::with_workers(1)))
}

#[test]
fn no_lost_tasks_under_contention() {
    // Several OS threads hammer one pool concurrently; every task bumps a
    // shared counter and returns its index. All tasks must run exactly once
    // and each batch's results must come back in submission order.
    let pool = Arc::new(WorkerPool::with_workers(4));
    let total = Arc::new(AtomicU64::new(0));
    let rounds = 50;
    let tasks_per_round = 64;

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            scope.spawn(move || {
                for round in 0..rounds {
                    let tasks: Vec<_> = (0..tasks_per_round)
                        .map(|i| {
                            let total = &total;
                            move |_worker: usize| {
                                total.fetch_add(1, Ordering::Relaxed);
                                (t, round, i)
                            }
                        })
                        .collect();
                    let out = pool.run(tasks);
                    for (i, &(rt, rr, ri)) in out.iter().enumerate() {
                        assert_eq!((rt, rr, ri), (t, round, i as u64));
                    }
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4 * rounds * tasks_per_round);
    let stats = pool.stats();
    assert_eq!(stats.workers, 4);
    assert!(stats.tasks >= 4 * rounds * tasks_per_round);
}

#[test]
fn steals_happen_under_rigged_skew() {
    // Round-robin distribution puts task 0, 4, 8, … on worker 0's deque.
    // Make those tasks slow: the remaining workers drain their own queues
    // and must steal from worker 0 (or the caller helps). Either way every
    // task completes; on a multi-worker pool the steal counter should move.
    let pool = WorkerPool::with_workers(4);
    let tasks: Vec<_> = (0..256usize)
        .map(|i| {
            move |_w: usize| {
                if i % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i * 2
            }
        })
        .collect();
    let out = pool.run(tasks);
    assert_eq!(out.len(), 256);
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, i * 2);
    }
    // Steal counts are scheduling-dependent; just check the gauge plumbing
    // is live (max_queue_depth observed something).
    let stats = pool.stats();
    assert!(stats.max_queue_depth > 0);
    assert_eq!(stats.busy_micros.len(), 4);
}

#[test]
fn shutdown_is_idempotent_and_leaves_run_usable() {
    let pool = WorkerPool::with_workers(3);
    let out = pool.run((0..10).map(|i| move |_w: usize| i + 1).collect::<Vec<_>>());
    assert_eq!(out, (1..=10).collect::<Vec<_>>());

    pool.shutdown();
    pool.shutdown(); // double shutdown must be a no-op, not a hang/panic

    // Post-shutdown, run() falls back to inline execution.
    let out = pool.run((0..5).map(|i| move |_w: usize| i * 3).collect::<Vec<_>>());
    assert_eq!(out, vec![0, 3, 6, 9, 12]);
}

#[test]
fn panics_propagate_to_the_caller() {
    let pool = WorkerPool::with_workers(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(
            (0..8)
                .map(|i| {
                    move |_w: usize| {
                        if i == 5 {
                            panic!("task {i} exploded");
                        }
                        i
                    }
                })
                .collect::<Vec<_>>(),
        )
    }));
    assert!(result.is_err());
    // The pool must survive a panicked batch and keep serving.
    let out = pool.run((0..4).map(|i| move |_w: usize| i).collect::<Vec<_>>());
    assert_eq!(out, vec![0, 1, 2, 3]);
}

#[test]
fn single_worker_pool_runs_inline_in_order() {
    let pool = WorkerPool::with_workers(1);
    let order = std::sync::Mutex::new(Vec::new());
    let tasks: Vec<_> = (0..16)
        .map(|i| {
            let order = &order;
            move |_w: usize| {
                order.lock().unwrap().push(i);
                i
            }
        })
        .collect();
    let out = pool.run(tasks);
    assert_eq!(out, (0..16).collect::<Vec<_>>());
    assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    assert_eq!(pool.stats().workers, 1);
}

fn mk2(names: [&str; 2], rows: &[(u32, u32)]) -> Table {
    Table::from_columns(
        Schema::new(names),
        vec![
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| r.1).collect(),
        ],
    )
}

/// Configs that force each join strategy regardless of input shape.
fn forced_configs() -> Vec<(&'static str, JoinConfig)> {
    vec![
        (
            "forced-broadcast",
            JoinConfig {
                serial_row_threshold: 0,
                broadcast_rows: usize::MAX,
                ..JoinConfig::default()
            },
        ),
        (
            "forced-partitioned",
            JoinConfig {
                serial_row_threshold: 0,
                broadcast_rows: 0,
                broadcast_bytes: 0,
                target_partition_rows: 8,
                max_partitions: 6,
                ..JoinConfig::default()
            },
        ),
        (
            "tiny-morsels",
            JoinConfig {
                serial_row_threshold: 0,
                broadcast_rows: usize::MAX,
                morsel_rows: 3,
                ..JoinConfig::default()
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a 1-worker pool every strategy — broadcast, partitioned, tiny
    /// morsels — must equal the serial join exactly (S2RDF_THREADS=1
    /// serial equivalence).
    #[test]
    fn serial_pool_equivalence(
        left in proptest::collection::vec((0u32..6, 0u32..1000), 0..120),
        right in proptest::collection::vec((0u32..6, 0u32..1000), 0..120),
    ) {
        let l = mk2(["k", "a"], &left);
        let r = mk2(["k", "b"], &right);
        let ser = natural_join(&l, &r);
        pool::with_pool(serial_pool(), || {
            for (label, cfg) in forced_configs() {
                let (out, decision) = natural_join_adaptive(&l, &r, &cfg);
                prop_assert_eq!(out.schema(), ser.schema(), "{}", label);
                prop_assert_eq!(
                    row_multiset(&out),
                    row_multiset(&ser),
                    "{}", label
                );
                if label == "forced-broadcast" && !l.is_empty() && !r.is_empty() {
                    prop_assert_eq!(decision.strategy, JoinStrategy::Broadcast);
                }
            }
            let par = par_natural_join(&l, &r, 5);
            prop_assert_eq!(row_multiset(&par), row_multiset(&ser));
        });
    }
}

#[test]
fn serial_pool_equivalence_deterministic_skew() {
    // The 90%-hot-key shape that triggers broadcast splitting and AQE
    // re-splits, on a 1-worker pool.
    let hot: Vec<(u32, u32)> = (0..4000)
        .map(|i| if i % 10 < 9 { (7, i) } else { (i % 64, i) })
        .collect();
    let flat: Vec<(u32, u32)> = (0..500).map(|i| (i % 64, i + 10_000)).collect();
    let l = mk2(["k", "a"], &hot);
    let r = mk2(["k", "b"], &flat);
    let ser = natural_join(&l, &r);
    pool::with_pool(serial_pool(), || {
        for (label, cfg) in forced_configs() {
            let (out, _) = natural_join_adaptive(&l, &r, &cfg);
            assert_eq!(row_multiset(&out), row_multiset(&ser), "{label}");
        }
    });
}
