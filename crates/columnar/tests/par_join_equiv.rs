//! Property tests for the partition-native parallel join: for *any* input
//! tables, partition count, and key distribution — including the crafted
//! 90 %-hot-key skew the broadcast splitter exists for — `par_natural_join`
//! and `natural_join_auto` must be indistinguishable up to row order
//! (multiset semantics; the schema must match exactly).

use proptest::prelude::*;
use s2rdf_columnar::exec::{natural_join_auto, par_natural_join, row_multiset};
use s2rdf_columnar::ops::natural_join;
use s2rdf_columnar::{Schema, Table};

fn mk2(names: [&str; 2], rows: &[(u32, u32)]) -> Table {
    Table::from_columns(
        Schema::new(names),
        vec![
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| r.1).collect(),
        ],
    )
}

/// Deterministic xorshift rows with `skew_pct`% of keys pinned to a hot
/// value — the straggler shape a hash splitter alone cannot balance.
fn skewed_rows(n: usize, hot_key: u32, skew_pct: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = if (state >> 33) as u32 % 100 < skew_pct {
                hot_key
            } else {
                (state >> 11) as u32 % 64
            };
            (key, i as u32)
        })
        .collect()
}

proptest! {
    /// Single shared key column, all partition counts.
    #[test]
    fn par_join_matches_serial(
        left in proptest::collection::vec((0u32..6, 0u32..1000), 0..200),
        right in proptest::collection::vec((0u32..6, 0u32..1000), 0..200),
        parts in 1usize..17,
    ) {
        let l = mk2(["k", "a"], &left);
        let r = mk2(["k", "b"], &right);
        let par = par_natural_join(&l, &r, parts);
        let ser = natural_join(&l, &r);
        prop_assert_eq!(par.schema(), ser.schema());
        prop_assert_eq!(row_multiset(&par), row_multiset(&ser));
    }

    /// Two shared key columns (the packed two-column fold path).
    #[test]
    fn par_join_two_keys_matches_serial(
        left in proptest::collection::vec((0u32..4, 0u32..4, 0u32..100), 0..150),
        right in proptest::collection::vec((0u32..4, 0u32..4, 0u32..100), 0..150),
        parts in 1usize..9,
    ) {
        let col = |rows: &[(u32, u32, u32)], f: fn(&(u32, u32, u32)) -> u32| {
            rows.iter().map(f).collect::<Vec<u32>>()
        };
        let l = Table::from_columns(
            Schema::new(["x", "y", "a"]),
            vec![col(&left, |r| r.0), col(&left, |r| r.1), col(&left, |r| r.2)],
        );
        let r = Table::from_columns(
            Schema::new(["x", "y", "b"]),
            vec![col(&right, |r| r.0), col(&right, |r| r.1), col(&right, |r| r.2)],
        );
        let par = par_natural_join(&l, &r, parts);
        let ser = natural_join(&l, &r);
        prop_assert_eq!(par.schema(), ser.schema());
        prop_assert_eq!(row_multiset(&par), row_multiset(&ser));
    }

    /// Heavy skew on either or both sides: the hot-key broadcast path must
    /// still produce exactly the serial multiset. `skew_pct` sweeps
    /// through (and past) the crafted 90 % case from the paper's
    /// straggler scenario.
    #[test]
    fn skewed_par_join_matches_serial(
        n_left in 50usize..300,
        n_right in 50usize..300,
        skew_left in 0u32..=95,
        skew_right in 0u32..=95,
        parts in 2usize..9,
        seed in any::<u64>(),
    ) {
        let l = mk2(["k", "a"], &skewed_rows(n_left, 42, skew_left, seed));
        let r = mk2(["k", "b"], &skewed_rows(n_right, 42, skew_right, seed ^ 0xDEAD_BEEF));
        let par = par_natural_join(&l, &r, parts);
        let ser = natural_join(&l, &r);
        prop_assert_eq!(par.schema(), ser.schema());
        prop_assert_eq!(row_multiset(&par), row_multiset(&ser));
    }

    /// `natural_join_auto` (the engine entry point) agrees with the serial
    /// join regardless of which path it dispatches to.
    #[test]
    fn auto_dispatch_matches_serial(
        left in proptest::collection::vec((0u32..8, 0u32..1000), 0..120),
        right in proptest::collection::vec((0u32..8, 0u32..1000), 0..120),
    ) {
        let l = mk2(["k", "a"], &left);
        let r = mk2(["k", "b"], &right);
        prop_assert_eq!(
            row_multiset(&natural_join_auto(&l, &r)),
            row_multiset(&natural_join(&l, &r))
        );
    }
}

/// The crafted 90 %-skew case, pinned deterministically (the proptest
/// above sweeps the space; this one guarantees the exact scenario from the
/// issue is always exercised).
#[test]
fn ninety_pct_skew_exact_case() {
    let l = mk2(["k", "a"], &skewed_rows(20_000, 42, 90, 0x5EED));
    let r = mk2(["k", "b"], &skewed_rows(2_000, 42, 90, 0xF00D));
    for parts in [2, 4, 8] {
        let par = par_natural_join(&l, &r, parts);
        let ser = natural_join(&l, &r);
        assert_eq!(par.schema(), ser.schema());
        assert_eq!(row_multiset(&par), row_multiset(&ser), "parts={parts}");
    }
}
