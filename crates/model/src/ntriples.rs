//! Line-based N-Triples reading and writing.
//!
//! This is the interchange format the WatDiv generator emits and the loaders
//! ingest, mirroring the paper's use of N-Triples input files (§7, Table 2
//! reports input sizes "in N-triples format").

use std::io::{BufRead, Write};

use crate::error::ModelError;
use crate::graph::Graph;
use crate::term::{Term, Triple};

/// Parses a single N-Triples statement line (without the trailing newline).
///
/// Returns `Ok(None)` for blank lines and `#` comments.
pub fn parse_line(line: &str, lineno: usize) -> Result<Option<Triple>, ModelError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let body = line
        .strip_suffix('.')
        .ok_or_else(|| ModelError::InvalidLine {
            line: lineno,
            message: "missing trailing '.'".to_string(),
        })?;
    let mut rest = body.trim();

    let mut take_term = |what: &str| -> Result<Term, ModelError> {
        let (tok, remainder) = split_term(rest).ok_or_else(|| ModelError::InvalidLine {
            line: lineno,
            message: format!("missing {what}"),
        })?;
        rest = remainder.trim_start();
        Term::parse_ntriples(tok).map_err(|e| ModelError::InvalidLine {
            line: lineno,
            message: e.to_string(),
        })
    };

    let s = take_term("subject")?;
    let p = take_term("predicate")?;
    let o = take_term("object")?;
    if !rest.trim().is_empty() {
        return Err(ModelError::InvalidLine {
            line: lineno,
            message: format!("trailing content: {rest:?}"),
        });
    }
    Ok(Some(Triple::new(s, p, o)))
}

/// Splits the leading term token off `s`, returning `(token, rest)`.
fn split_term(s: &str) -> Option<(&str, &str)> {
    let s = s.trim_start();
    if s.is_empty() {
        return None;
    }
    let bytes = s.as_bytes();
    match bytes[0] {
        b'<' => {
            let end = s.find('>')?;
            Some((&s[..=end], &s[end + 1..]))
        }
        b'_' => {
            let end = s.find(char::is_whitespace).unwrap_or(s.len());
            Some((&s[..end], &s[end..]))
        }
        b'"' => {
            // Closing quote honouring escapes, then optional @lang / ^^<dt>.
            let mut i = 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => break,
                    _ => i += 1,
                }
            }
            if i >= bytes.len() {
                return None;
            }
            let mut end = i + 1;
            if bytes.get(end) == Some(&b'@') {
                end += 1;
                while end < bytes.len() && !bytes[end].is_ascii_whitespace() {
                    end += 1;
                }
            } else if s[end..].starts_with("^^<") {
                let close = s[end..].find('>')?;
                end += close + 1;
            }
            Some((&s[..end], &s[end..]))
        }
        _ => None,
    }
}

/// Reads an entire N-Triples document into a [`Graph`].
pub fn read_graph<R: BufRead>(reader: R) -> Result<Graph, ModelError> {
    let mut graph = Graph::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(triple) = parse_line(&line, idx + 1)? {
            graph.insert(&triple);
        }
    }
    Ok(graph)
}

/// Writes a graph as an N-Triples document.
pub fn write_graph<W: Write>(graph: &Graph, writer: &mut W) -> Result<(), ModelError> {
    let mut out = std::io::BufWriter::new(writer);
    for triple in graph.iter_decoded() {
        writeln!(out, "{triple}")?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_line() {
        let t = parse_line("<a> <p> <b> .", 1).unwrap().unwrap();
        assert_eq!(
            t,
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b"))
        );
    }

    #[test]
    fn parse_literal_object() {
        let t = parse_line("<a> <p> \"v with spaces\"@en .", 1)
            .unwrap()
            .unwrap();
        assert_eq!(t.o, Term::lang_literal("v with spaces", "en"));
        let t = parse_line(
            "<a> <p> \"12\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
            1,
        )
        .unwrap()
        .unwrap();
        assert_eq!(t.o, Term::integer(12));
    }

    #[test]
    fn skip_comments_and_blanks() {
        assert_eq!(parse_line("", 1).unwrap(), None);
        assert_eq!(parse_line("   # comment", 2).unwrap(), None);
    }

    #[test]
    fn reject_malformed() {
        assert!(parse_line("<a> <p> <b>", 1).is_err()); // no dot
        assert!(parse_line("<a> <p> .", 1).is_err()); // missing object
        assert!(parse_line("<a> <p> <b> <c> .", 1).is_err()); // extra term
    }

    #[test]
    fn document_roundtrip() {
        let src = "<a> <p> <b> .\n<b> <p> \"x\\\"y\" .\n<c> <q> \"2\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        let g = read_graph(src.as_bytes()).unwrap();
        assert_eq!(g.len(), 3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g2.len(), 3);
        for t in g.iter_decoded() {
            assert!(g2.iter_decoded().any(|u| u == t));
        }
    }
}
