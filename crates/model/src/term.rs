//! RDF terms and decoded triples.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

use crate::error::ModelError;

/// The `xsd:integer` datatype IRI, used by the generator and by ORDER BY
/// comparisons.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// The `xsd:decimal` datatype IRI.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";

/// An RDF term: IRI, blank node, or literal.
///
/// Literals carry an optional language tag or datatype IRI (mutually
/// exclusive per the RDF 1.1 data model; a plain literal has neither).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference such as `http://example.org/alice`.
    Iri(String),
    /// A blank node with its local label (without the `_:` prefix).
    BlankNode(String),
    /// A literal with optional language tag or datatype.
    Literal {
        /// The lexical form.
        lexical: String,
        /// Language tag (e.g. `en`), exclusive with `datatype`.
        lang: Option<String>,
        /// Datatype IRI, exclusive with `lang`.
        datatype: Option<String>,
    },
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(value: impl Into<String>) -> Term {
        Term::Iri(value.into())
    }

    /// Creates a blank node term.
    pub fn blank(label: impl Into<String>) -> Term {
        Term::BlankNode(label.into())
    }

    /// Creates a plain (untyped, untagged) literal.
    pub fn literal(lexical: impl Into<String>) -> Term {
        Term::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: None,
        }
    }

    /// Creates a typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Term {
        Term::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }

    /// Creates a language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, lang: impl Into<String>) -> Term {
        Term::Literal {
            lexical: lexical.into(),
            lang: Some(lang.into()),
            datatype: None,
        }
    }

    /// Creates an `xsd:integer` literal.
    pub fn integer(value: i64) -> Term {
        Term::typed_literal(value.to_string(), XSD_INTEGER)
    }

    /// Returns true if this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns true if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// Returns true if this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// Returns the numeric value of this term if it is a literal whose
    /// lexical form parses as a number (used for FILTER arithmetic and
    /// ORDER BY).
    pub fn numeric_value(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The SPARQL value-ordering used by ORDER BY: blank nodes < IRIs <
    /// literals; numeric literals compare numerically, everything else
    /// lexicographically.
    pub fn value_cmp(&self, other: &Term) -> Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::BlankNode(_) => 0,
                Term::Iri(_) => 1,
                Term::Literal { .. } => 2,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => {}
            o => return o,
        }
        if let (Some(a), Some(b)) = (self.numeric_value(), other.numeric_value()) {
            if let Some(o) = a.partial_cmp(&b) {
                if o != Ordering::Equal {
                    return o;
                }
            }
        }
        self.cmp(other)
    }

    /// Parses one term in N-Triples syntax (`<iri>`, `_:label`, or a quoted
    /// literal with optional `@lang` / `^^<datatype>` suffix).
    pub fn parse_ntriples(s: &str) -> Result<Term, ModelError> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix('<') {
            let iri = rest
                .strip_suffix('>')
                .ok_or_else(|| ModelError::InvalidTerm(s.to_string()))?;
            return Ok(Term::iri(iri));
        }
        if let Some(label) = s.strip_prefix("_:") {
            if label.is_empty() {
                return Err(ModelError::InvalidTerm(s.to_string()));
            }
            return Ok(Term::blank(label));
        }
        if let Some(rest) = s.strip_prefix('"') {
            // Find the closing quote, honouring backslash escapes.
            let bytes = rest.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => break,
                    _ => i += 1,
                }
            }
            if i >= bytes.len() {
                return Err(ModelError::InvalidTerm(s.to_string()));
            }
            let lexical = unescape(&rest[..i]);
            let suffix = rest[i + 1..].trim();
            if suffix.is_empty() {
                return Ok(Term::literal(lexical));
            }
            if let Some(lang) = suffix.strip_prefix('@') {
                return Ok(Term::lang_literal(lexical, lang));
            }
            if let Some(dt) = suffix.strip_prefix("^^<").and_then(|d| d.strip_suffix('>')) {
                return Ok(Term::typed_literal(lexical, dt));
            }
            return Err(ModelError::InvalidTerm(s.to_string()));
        }
        Err(ModelError::InvalidTerm(s.to_string()))
    }
}

fn escape(s: &str) -> Cow<'_, str> {
    if !s.contains(['"', '\\', '\n', '\r', '\t']) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

fn unescape(s: &str) -> String {
    if !s.contains('\\') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::BlankNode(label) => write!(f, "_:{label}"),
            Term::Literal {
                lexical,
                lang,
                datatype,
            } => {
                write!(f, "\"{}\"", escape(lexical))?;
                if let Some(lang) = lang {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
        }
    }
}

/// A decoded RDF triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject term (IRI or blank node in valid RDF).
    pub s: Term,
    /// Predicate term (IRI in valid RDF).
    pub p: Term,
    /// Object term.
    pub o: Term,
}

impl Triple {
    /// Creates a triple from its three components.
    pub fn new(s: Term, p: Term, o: Term) -> Triple {
        Triple { s, p, o }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_iri() {
        let t = Term::parse_ntriples("<http://example.org/a>").unwrap();
        assert_eq!(t, Term::iri("http://example.org/a"));
        assert_eq!(t.to_string(), "<http://example.org/a>");
    }

    #[test]
    fn parse_blank() {
        let t = Term::parse_ntriples("_:b1").unwrap();
        assert_eq!(t, Term::blank("b1"));
        assert_eq!(t.to_string(), "_:b1");
    }

    #[test]
    fn parse_plain_literal() {
        let t = Term::parse_ntriples("\"hello\"").unwrap();
        assert_eq!(t, Term::literal("hello"));
    }

    #[test]
    fn parse_lang_literal() {
        let t = Term::parse_ntriples("\"bonjour\"@fr").unwrap();
        assert_eq!(t, Term::lang_literal("bonjour", "fr"));
        assert_eq!(t.to_string(), "\"bonjour\"@fr");
    }

    #[test]
    fn parse_typed_literal() {
        let s = format!("\"42\"^^<{XSD_INTEGER}>");
        let t = Term::parse_ntriples(&s).unwrap();
        assert_eq!(t, Term::integer(42));
        assert_eq!(t.to_string(), s);
    }

    #[test]
    fn parse_escaped_literal() {
        let t = Term::parse_ntriples(r#""a\"b\nc""#).unwrap();
        assert_eq!(t, Term::literal("a\"b\nc"));
        let rendered = t.to_string();
        let back = Term::parse_ntriples(&rendered).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn reject_garbage() {
        assert!(Term::parse_ntriples("nonsense").is_err());
        assert!(Term::parse_ntriples("<unterminated").is_err());
        assert!(Term::parse_ntriples("\"unterminated").is_err());
        assert!(Term::parse_ntriples("_:").is_err());
    }

    #[test]
    fn numeric_value_and_ordering() {
        let two = Term::integer(2);
        let ten = Term::integer(10);
        assert_eq!(two.numeric_value(), Some(2.0));
        assert_eq!(two.value_cmp(&ten), Ordering::Less);
        // Lexicographic string ordering would say "10" < "2"; value order must not.
        assert_eq!(ten.value_cmp(&two), Ordering::Greater);
        // IRIs sort before literals.
        assert_eq!(
            Term::iri("z").value_cmp(&Term::literal("a")),
            Ordering::Less
        );
    }

    #[test]
    fn triple_display() {
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::literal("o"));
        assert_eq!(t.to_string(), "<s> <p> \"o\" .");
    }
}
