//! RDF data model for the S2RDF reproduction.
//!
//! This crate provides the pieces every other layer builds on:
//!
//! * [`Term`] — RDF terms (IRIs, blank nodes, literals) with N-Triples
//!   syntax parsing and serialization,
//! * [`Dictionary`] — global dictionary encoding of terms into dense
//!   [`TermId`]s (the analogue of Parquet's dictionary encoding in the
//!   paper's storage layer),
//! * [`Graph`] — a set of dictionary-encoded triples with per-predicate
//!   access,
//! * [`delta`] — encoded insert/delete batches, the unit of durable store
//!   updates, and
//! * [`ntriples`] — line-based N-Triples reading and writing.

pub mod delta;
pub mod dict;
pub mod error;
pub mod graph;
pub mod ntriples;
pub mod term;

pub use delta::{DeltaBatch, DeltaRecord};
pub use dict::{Dictionary, TermId};
pub use error::ModelError;
pub use graph::{EncodedTriple, Graph};
pub use term::{Term, Triple};
