//! Dictionary-encoded triple deltas — the payload of one WAL record.
//!
//! A [`DeltaBatch`] captures one `insert`/`delete` call against a store:
//! the terms it interned for the first time (in id order, so replaying the
//! batch re-interns them and reproduces the exact same dense ids — interning
//! is idempotent) and the triple operations themselves, referencing terms by
//! id. The binary encoding is self-contained and *total* to decode: any
//! byte string either parses or returns an error, never panics — the WAL
//! layer below guarantees integrity via CRC, but replay still refuses to
//! trust lengths it cannot verify.
//!
//! ```text
//! payload := [u8 version=1]
//!            [varint n_terms] ( [varint len] [len bytes of N-Triples term] )*
//!            [varint n_ops]   ( [u8 op] [varint s] [varint p] [varint o] )*
//! ```

use crate::error::ModelError;
use crate::term::Term;

/// Format version of the encoded batch.
const DELTA_VERSION: u8 = 1;

/// One triple operation, components as dictionary ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRecord {
    /// True for insert, false for delete.
    pub insert: bool,
    /// Subject id.
    pub s: u32,
    /// Predicate id.
    pub p: u32,
    /// Object id.
    pub o: u32,
}

/// A batch of triple operations plus the dictionary growth they caused.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Terms first interned by this batch, in id order: replay interns them
    /// in sequence and obtains identical ids.
    pub new_terms: Vec<Term>,
    /// The operations, in application order.
    pub ops: Vec<DeltaRecord>,
}

impl DeltaBatch {
    /// True if the batch neither grows the dictionary nor touches triples.
    pub fn is_empty(&self) -> bool {
        self.new_terms.is_empty() && self.ops.is_empty()
    }

    /// Serializes the batch (see module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![DELTA_VERSION];
        write_varint(&mut out, self.new_terms.len() as u64);
        for term in &self.new_terms {
            let text = term.to_string();
            write_varint(&mut out, text.len() as u64);
            out.extend_from_slice(text.as_bytes());
        }
        write_varint(&mut out, self.ops.len() as u64);
        for op in &self.ops {
            out.push(if op.insert { 1 } else { 0 });
            write_varint(&mut out, op.s as u64);
            write_varint(&mut out, op.p as u64);
            write_varint(&mut out, op.o as u64);
        }
        out
    }

    /// Decodes a batch. Total: malformed input yields an error, not a
    /// panic, and trailing bytes are rejected.
    pub fn decode(bytes: &[u8]) -> Result<DeltaBatch, ModelError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let version = cur.byte()?;
        if version != DELTA_VERSION {
            return Err(ModelError::InvalidDelta(format!(
                "unsupported delta version {version}"
            )));
        }
        let n_terms = cur.varint()?;
        let mut new_terms = Vec::new();
        for _ in 0..n_terms {
            let len = cur.varint()? as usize;
            let raw = cur.slice(len)?;
            let text = std::str::from_utf8(raw)
                .map_err(|_| ModelError::InvalidDelta("term is not UTF-8".to_string()))?;
            new_terms.push(Term::parse_ntriples(text)?);
        }
        let n_ops = cur.varint()?;
        let mut ops = Vec::new();
        for _ in 0..n_ops {
            let tag = cur.byte()?;
            let insert = match tag {
                0 => false,
                1 => true,
                other => {
                    return Err(ModelError::InvalidDelta(format!("bad op tag {other}")));
                }
            };
            let s = cur.id()?;
            let p = cur.id()?;
            let o = cur.id()?;
            ops.push(DeltaRecord { insert, s, p, o });
        }
        if cur.pos != bytes.len() {
            return Err(ModelError::InvalidDelta(format!(
                "{} trailing bytes after batch",
                bytes.len() - cur.pos
            )));
        }
        Ok(DeltaBatch { new_terms, ops })
    }
}

/// LEB128 variable-length encoding, least-significant group first.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Bounds-checked reader over the encoded bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn byte(&mut self) -> Result<u8, ModelError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| ModelError::InvalidDelta("unexpected end of batch".to_string()))?;
        self.pos += 1;
        Ok(b)
    }

    fn slice(&mut self, len: usize) -> Result<&[u8], ModelError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ModelError::InvalidDelta("unexpected end of batch".to_string()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, ModelError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(ModelError::InvalidDelta("varint too long".to_string()))
    }

    fn id(&mut self) -> Result<u32, ModelError> {
        u32::try_from(self.varint()?)
            .map_err(|_| ModelError::InvalidDelta("term id exceeds u32".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeltaBatch {
        DeltaBatch {
            new_terms: vec![
                Term::iri("http://example.org/a"),
                Term::lang_literal("héllo", "en"),
                Term::blank("n0"),
            ],
            ops: vec![
                DeltaRecord {
                    insert: true,
                    s: 0,
                    p: 1,
                    o: 2,
                },
                DeltaRecord {
                    insert: false,
                    s: 300,
                    p: 70000,
                    o: u32::MAX,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let batch = sample();
        assert_eq!(DeltaBatch::decode(&batch.encode()).unwrap(), batch);
        let empty = DeltaBatch::default();
        assert!(empty.is_empty());
        assert_eq!(DeltaBatch::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_is_total() {
        let encoded = sample().encode();
        // Every truncation either errors or (never) panics.
        for cut in 0..encoded.len() {
            let _ = DeltaBatch::decode(&encoded[..cut]);
        }
        // Every single-byte corruption is survived too.
        for i in 0..encoded.len() {
            let mut bad = encoded.clone();
            bad[i] ^= 0x55;
            let _ = DeltaBatch::decode(&bad);
        }
        // Trailing garbage is rejected, not ignored.
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(DeltaBatch::decode(&padded).is_err());
    }

    #[test]
    fn rejects_structurally_bad_input() {
        assert!(DeltaBatch::decode(&[]).is_err());
        assert!(DeltaBatch::decode(&[9]).is_err()); // bad version
        assert!(DeltaBatch::decode(&[1, 0, 1, 7, 0, 0, 0]).is_err()); // bad op tag
    }
}
