//! Dictionary-encoded RDF graphs.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::dict::{Dictionary, TermId};
use crate::term::{Term, Triple};

/// A triple with all three components dictionary-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EncodedTriple {
    /// Subject id.
    pub s: TermId,
    /// Predicate id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

/// An RDF graph: a *set* of triples plus the dictionary that encodes them.
///
/// Insertion order of first occurrence is preserved, which keeps generation
/// deterministic; duplicate triples are ignored (RDF graphs are sets).
///
/// ```
/// use s2rdf_model::{Graph, Term, Triple};
///
/// let mut g = Graph::new();
/// let t = Triple::new(Term::iri("a"), Term::iri("p"), Term::literal("v"));
/// assert!(g.insert(&t));
/// assert!(!g.insert(&t)); // duplicate
/// assert_eq!(g.len(), 1);
/// assert_eq!(g.dict().len(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Graph {
    dict: Dictionary,
    triples: Vec<EncodedTriple>,
    seen: FxHashSet<EncodedTriple>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Inserts a decoded triple. Returns true if it was new.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let enc = EncodedTriple {
            s: self.dict.intern(&triple.s),
            p: self.dict.intern(&triple.p),
            o: self.dict.intern(&triple.o),
        };
        self.insert_encoded(enc)
    }

    /// Inserts an already-encoded triple. Returns true if it was new.
    pub fn insert_encoded(&mut self, triple: EncodedTriple) -> bool {
        debug_assert!(self.dict.get(triple.s).is_some());
        debug_assert!(self.dict.get(triple.p).is_some());
        debug_assert!(self.dict.get(triple.o).is_some());
        if self.seen.insert(triple) {
            self.triples.push(triple);
            true
        } else {
            false
        }
    }

    /// Builds a graph from an iterator of decoded triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(iter: I) -> Graph {
        let mut g = Graph::new();
        for t in iter {
            g.insert(&t);
        }
        g
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The dictionary backing this graph.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary (used by builders that intern query
    /// constants before encoding).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// All encoded triples in insertion order.
    pub fn triples(&self) -> &[EncodedTriple] {
        &self.triples
    }

    /// Interns a term into this graph's dictionary (without adding triples).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dict.intern(term)
    }

    /// Decodes one triple.
    pub fn decode(&self, t: EncodedTriple) -> Triple {
        Triple::new(
            self.dict.term(t.s).clone(),
            self.dict.term(t.p).clone(),
            self.dict.term(t.o).clone(),
        )
    }

    /// Iterates decoded triples.
    pub fn iter_decoded(&self) -> impl Iterator<Item = Triple> + '_ {
        self.triples.iter().map(|&t| self.decode(t))
    }

    /// Returns the distinct predicate ids with their triple counts, in
    /// first-seen order.
    pub fn predicate_counts(&self) -> Vec<(TermId, usize)> {
        let mut counts: FxHashMap<TermId, usize> = FxHashMap::default();
        let mut order: Vec<TermId> = Vec::new();
        for t in &self.triples {
            let e = counts.entry(t.p).or_insert(0);
            if *e == 0 {
                order.push(t.p);
            }
            *e += 1;
        }
        order.into_iter().map(|p| (p, counts[&p])).collect()
    }

    /// True if the graph contains the given encoded triple.
    pub fn contains(&self, t: EncodedTriple) -> bool {
        self.seen.contains(&t)
    }

    /// Removes a decoded triple. Returns true if it was present. The
    /// dictionary is never shrunk — ids stay stable across deletions, which
    /// WAL replay relies on.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id(&triple.s),
            self.dict.id(&triple.p),
            self.dict.id(&triple.o),
        ) else {
            return false;
        };
        self.remove_encoded(EncodedTriple { s, p, o })
    }

    /// Removes an already-encoded triple, preserving the insertion order of
    /// the survivors. Returns true if it was present.
    pub fn remove_encoded(&mut self, t: EncodedTriple) -> bool {
        if self.seen.remove(&t) {
            self.triples.retain(|x| *x != t);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// The paper's running-example graph G1 (Fig. 1).
    pub fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    #[test]
    fn build_g1() {
        let g = g1();
        assert_eq!(g.len(), 7);
        // 6 resources + 2 predicates = 8 distinct terms.
        assert_eq!(g.dict().len(), 8);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut g = g1();
        assert!(!g.insert(&t("A", "follows", "B")));
        assert_eq!(g.len(), 7);
        assert!(g.insert(&t("D", "follows", "A")));
        assert_eq!(g.len(), 8);
    }

    #[test]
    fn predicate_counts_match() {
        let g = g1();
        let counts = g.predicate_counts();
        assert_eq!(counts.len(), 2);
        let follows = g.dict().id(&Term::iri("follows")).unwrap();
        let likes = g.dict().id(&Term::iri("likes")).unwrap();
        assert!(counts.contains(&(follows, 4)));
        assert!(counts.contains(&(likes, 3)));
    }

    #[test]
    fn decode_roundtrip() {
        let g = g1();
        let decoded: Vec<_> = g.iter_decoded().collect();
        let g2 = Graph::from_triples(decoded);
        assert_eq!(g2.len(), g.len());
        for tr in g.triples() {
            let dec = g.decode(*tr);
            let enc = EncodedTriple {
                s: g2.dict().id(&dec.s).unwrap(),
                p: g2.dict().id(&dec.p).unwrap(),
                o: g2.dict().id(&dec.o).unwrap(),
            };
            assert!(g2.contains(enc));
        }
    }

    #[test]
    fn remove_keeps_order_and_dictionary() {
        let mut g = g1();
        let dict_len = g.dict().len();
        assert!(g.remove(&t("B", "follows", "C")));
        assert!(!g.remove(&t("B", "follows", "C")), "already gone");
        assert!(!g.remove(&t("B", "follows", "nope")), "unknown term");
        assert_eq!(g.len(), 6);
        assert_eq!(g.dict().len(), dict_len, "ids stay stable");
        // Survivors keep their relative order.
        let decoded: Vec<_> = g.iter_decoded().collect();
        assert_eq!(decoded[0], t("A", "follows", "B"));
        assert_eq!(decoded[1], t("B", "follows", "D"));
        // Re-inserting is a fresh insert.
        assert!(g.insert(&t("B", "follows", "C")));
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn contains_checks_membership() {
        let g = g1();
        let first = g.triples()[0];
        assert!(g.contains(first));
        let bogus = EncodedTriple {
            s: first.s,
            p: first.p,
            o: first.s,
        };
        assert!(!g.contains(bogus));
    }
}
