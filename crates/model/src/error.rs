//! Error type for model-level operations.

use std::fmt;

/// Errors raised while parsing terms or N-Triples documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A term could not be parsed from its textual form.
    InvalidTerm(String),
    /// An N-Triples line is malformed. Carries the 1-based line number and a
    /// description of the problem.
    InvalidLine { line: usize, message: String },
    /// An encoded delta batch is malformed (see [`crate::delta`]).
    InvalidDelta(String),
    /// An I/O error occurred while reading or writing a document.
    Io(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidTerm(t) => write!(f, "invalid RDF term: {t}"),
            ModelError::InvalidLine { line, message } => {
                write!(f, "invalid N-Triples line {line}: {message}")
            }
            ModelError::InvalidDelta(m) => write!(f, "invalid delta batch: {m}"),
            ModelError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e.to_string())
    }
}
