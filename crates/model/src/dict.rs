//! Global dictionary encoding of terms.
//!
//! Every term in a dataset is interned into a dense [`TermId`] (`u32`).
//! All relational tables downstream (VP, ExtVP, triples table, …) hold ids
//! only, which keeps them two fixed-width columns wide — the property the
//! paper relies on when it argues semi-join reductions of VP tables are
//! cheap to precompute (§5.2).

use rustc_hash::FxHashMap;

use crate::term::Term;

/// A dense dictionary id for a term.
///
/// `u32` bounds a single dataset at ~4.3 billion distinct terms, far above
/// the laptop-scale datasets this reproduction targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional term ↔ id dictionary.
///
/// Ids are handed out densely in insertion order, so `terms[id]` decoding is
/// a plain vector index.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Interns a term, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow"));
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Looks up the id of a term without interning it.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Decodes an id back to its term.
    ///
    /// # Panics
    /// Panics if the id was not produced by this dictionary.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Decodes an id if it is valid for this dictionary.
    pub fn get(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("a"));
        let b = d.intern(&Term::iri("b"));
        let a2 = d.intern(&Term::iri("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/1"),
            Term::literal("plain"),
            Term::lang_literal("hi", "en"),
            Term::integer(7),
            Term::blank("n0"),
        ];
        let ids: Vec<_> = terms.iter().map(|t| d.intern(t)).collect();
        for (id, term) in ids.iter().zip(&terms) {
            assert_eq!(d.term(*id), term);
            assert_eq!(d.id(term), Some(*id));
        }
    }

    #[test]
    fn ids_are_dense() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.intern(&Term::integer(i));
            assert_eq!(id.index(), i as usize);
        }
    }

    #[test]
    fn unknown_lookups() {
        let d = Dictionary::new();
        assert_eq!(d.id(&Term::iri("missing")), None);
        assert_eq!(d.get(TermId(0)), None);
        assert!(d.is_empty());
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("a"));
        d.intern(&Term::iri("b"));
        let collected: Vec<_> = d.iter().map(|(id, t)| (id.0, t.clone())).collect();
        assert_eq!(collected, vec![(0, Term::iri("a")), (1, Term::iri("b"))]);
    }
}
