//! Property tests: N-Triples serialization round-trips arbitrary terms and
//! documents.

use proptest::prelude::*;

use s2rdf_model::{ntriples, Graph, Term, Triple};

/// Arbitrary RDF terms, including literals with escapes, language tags and
/// datatypes.
fn arb_term() -> impl Strategy<Value = Term> {
    let iri = "[a-zA-Z0-9:/._#~-]{1,30}".prop_map(Term::iri);
    let blank = "[a-zA-Z0-9]{1,10}".prop_map(Term::blank);
    let plain = any::<String>()
        .prop_filter("no surrogates handled fine; keep sane sizes", |s| {
            s.len() < 40
        })
        .prop_map(Term::literal);
    let lang =
        ("[a-z]{2}(-[A-Z]{2})?", "[a-zA-Z0-9 ]{0,20}").prop_map(|(l, s)| Term::lang_literal(s, l));
    let typed = ("[a-zA-Z0-9 \\\\\"\n\t]{0,20}", "[a-zA-Z0-9:/.#]{1,30}")
        .prop_map(|(s, d)| Term::typed_literal(s, d));
    prop_oneof![iri, blank, plain, lang, typed]
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-zA-Z0-9:/._-]{1,20}".prop_map(Term::iri),
        "[a-zA-Z0-9]{1,8}".prop_map(Term::blank),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn term_roundtrip(term in arb_term()) {
        let rendered = term.to_string();
        let parsed = Term::parse_ntriples(&rendered)
            .unwrap_or_else(|e| panic!("{e} for {rendered:?}"));
        prop_assert_eq!(parsed, term);
    }

    #[test]
    fn document_roundtrip(
        triples in proptest::collection::vec(
            (arb_subject(), "[a-zA-Z0-9:/._-]{1,20}".prop_map(Term::iri), arb_term()),
            0..30,
        )
    ) {
        // Newlines inside literals are escaped by the writer, so the
        // line-based reader must reconstruct the exact graph.
        let graph = Graph::from_triples(
            triples.into_iter().map(|(s, p, o)| Triple::new(s, p, o)),
        );
        let mut bytes = Vec::new();
        ntriples::write_graph(&graph, &mut bytes).unwrap();
        let back = ntriples::read_graph(bytes.as_slice()).unwrap();
        prop_assert_eq!(back.len(), graph.len());
        for t in graph.iter_decoded() {
            let found = back.iter_decoded().any(|u| u == t);
            prop_assert!(found, "missing triple {}", t);
        }
    }
}
