//! Minimal argument parsing: a subcommand followed by `--key value` pairs
//! and `--flag` booleans.

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Args {
    command: Option<String>,
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument iterator (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                out.command = iter.next();
            }
        }
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                // Stray positional: treat as unknown flag to surface typos.
                out.flags.push(arg);
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    out.pairs.push((name.to_string(), value));
                }
                _ => out.flags.push(name.to_string()),
            }
        }
        out
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// A required `--name value`.
    pub fn value(&self, name: &str) -> Result<String, String> {
        self.opt_value(name)
            .map(str::to_string)
            .ok_or_else(|| format!("missing --{name} <value>"))
    }

    /// An optional `--name value`.
    pub fn opt_value(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether `--name` was given as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_pairs() {
        let a = parse("load --data x.nt --store ./db --threshold 0.25");
        assert_eq!(a.command(), Some("load"));
        assert_eq!(a.value("data").unwrap(), "x.nt");
        assert_eq!(a.opt_value("threshold"), Some("0.25"));
        assert!(a.value("missing").is_err());
    }

    #[test]
    fn flags_without_values() {
        let a = parse("query --store db --explain --no-extvp --query SELECT");
        assert!(a.flag("explain"));
        assert!(a.flag("no-extvp"));
        assert!(!a.flag("stdin"));
        assert_eq!(a.opt_value("query"), Some("SELECT"));
    }

    #[test]
    fn no_subcommand() {
        let a = parse("--help");
        assert_eq!(a.command(), None);
        assert!(a.flag("help"));
    }

    #[test]
    fn trailing_flag() {
        let a = parse("stats --store db --explain");
        assert_eq!(a.opt_value("store"), Some("db"));
        assert!(a.flag("explain"));
    }
}
