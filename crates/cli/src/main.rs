//! `s2rdf` — command-line front end for the S2RDF reproduction.
//!
//! ```text
//! s2rdf generate --scale 1 [--seed 42] --out data.nt
//! s2rdf load     --data data.nt --store ./db [--threshold 1.0]
//!                [--mode rows|bits|lazy] [--no-extvp] [--oo]
//!                [--chunk-rows 4096] [--no-bloom]
//! s2rdf stats    --store ./db [--json]
//! s2rdf query    --store ./db --query 'SELECT/ASK/CONSTRUCT/DESCRIBE …' | --file q.rq
//!                [--explain] [--profile] [--no-extvp]
//!                [--broadcast-threshold <rows>] [--target-partition-rows <N>]
//!                [--max-partitions <N>] [--morsel-rows <N>]
//!                [--dp-max-patterns <N>] [--replan-threshold <ratio>]
//! s2rdf update   --store ./db [--insert add.nt] [--delete del.nt]
//!                [--checkpoint] [--chunk-rows <N>] [--no-bloom]
//! s2rdf checkpoint --store ./db [--chunk-rows <N>] [--no-bloom]
//! s2rdf verify   --store ./db [--repair] [--json]
//! ```

use std::io::Read;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use s2rdf_core::engines::{QueryResult, SparqlEngine};
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::layout::extvp::ExtVpMode;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_model::ntriples;
use s2rdf_watdiv::{generate, Config};

mod args;
use args::Args;

const USAGE: &str = "usage:
  s2rdf generate --scale <N> [--seed <S>] --out <file.nt>
  s2rdf load     --data <file.nt> --store <dir> [--threshold <0..1>]
                 [--mode rows|bits|lazy] [--no-extvp] [--oo]
                 [--chunk-rows <N>] [--no-bloom]
  s2rdf stats    --store <dir> [--json]
  s2rdf query    --store <dir> (--query <sparql> | --file <q.rq>)
                 [--explain] [--profile] [--no-extvp] [--intersect]
                 [--max-print <N>] [--broadcast-threshold <rows>]
                 [--target-partition-rows <N>] [--max-partitions <N>]
                 [--morsel-rows <N>] [--dp-max-patterns <N>]
                 [--replan-threshold <ratio>]
  s2rdf update   --store <dir> [--insert <file.nt>] [--delete <file.nt>]
                 [--checkpoint] [--chunk-rows <N>] [--no-bloom]
  s2rdf checkpoint --store <dir> [--chunk-rows <N>] [--no-bloom]
  s2rdf verify   --store <dir> [--repair] [--json]";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let result = match args.command() {
        Some("generate") => cmd_generate(&args),
        Some("load") => cmd_load(&args),
        Some("stats") => cmd_stats(&args),
        Some("query") => cmd_query(&args),
        Some("update") => cmd_update(&args),
        Some("checkpoint") => cmd_checkpoint(&args),
        Some("verify") => cmd_verify(&args),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The v3 encoder knobs, when the user overrides either default.
fn write_options_from(args: &Args) -> Result<Option<s2rdf_columnar::WriteOptions>, String> {
    let chunk_rows = args
        .opt_value("chunk-rows")
        .map(|s| match s.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err("bad --chunk-rows (need a positive integer)".to_string()),
        })
        .transpose()?;
    let no_bloom = args.flag("no-bloom");
    if chunk_rows.is_none() && !no_bloom {
        return Ok(None);
    }
    let defaults = s2rdf_columnar::WriteOptions::default();
    Ok(Some(s2rdf_columnar::WriteOptions {
        chunk_rows: chunk_rows.unwrap_or(defaults.chunk_rows),
        bloom: !no_bloom,
    }))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let scale: u32 = args.value("scale")?.parse().map_err(|_| "bad --scale")?;
    let seed: u64 = args
        .opt_value("seed")
        .map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed".to_string()))?;
    let out = args.value("out")?;
    eprintln!("generating WatDiv-style data at SF{scale} (seed {seed})…");
    let start = Instant::now();
    let data = generate(&Config { scale, seed });
    let mut file = std::fs::File::create(&out).map_err(|e| e.to_string())?;
    ntriples::write_graph(&data.graph, &mut file).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} triples to {out} in {:.2?}",
        data.graph.len(),
        start.elapsed()
    );
    Ok(())
}

fn cmd_load(args: &Args) -> Result<(), String> {
    let data_path = args.value("data")?;
    let store_dir = args.value("store")?;
    let threshold: f64 = args.opt_value("threshold").map_or(Ok(1.0), |s| {
        s.parse().map_err(|_| "bad --threshold".to_string())
    })?;
    let mode_label = args.opt_value("mode").unwrap_or("rows");
    let mode = ExtVpMode::from_label(mode_label)
        .ok_or(format!("bad --mode {mode_label} (rows|bits|lazy)"))?;
    let options = BuildOptions {
        threshold,
        build_extvp: !args.flag("no-extvp"),
        mode,
        include_oo: args.flag("oo"),
    };

    eprintln!("reading {data_path}…");
    let file = std::fs::File::open(&data_path).map_err(|e| e.to_string())?;
    let graph = ntriples::read_graph(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
    eprintln!("{} triples; building store ({options:?})…", graph.len());
    let start = Instant::now();
    let mut store = S2rdfStore::build(&graph, &options);
    if let Some(opts) = write_options_from(args)? {
        store.set_write_options(opts);
    }
    eprintln!(
        "built in {:.2?}: {} VP tables, {} ExtVP partitions ({} tuples)",
        start.elapsed(),
        store.catalog().num_predicates(),
        store.num_extvp_tables(),
        store.extvp_tuples()
    );
    store
        .save(Path::new(&store_dir))
        .map_err(|e| e.to_string())?;
    eprintln!("saved to {store_dir}");
    Ok(())
}

/// On-disk vs decoded footprint of every table in the store, plus how
/// many are in the chunked v3 format.
struct StorageStats {
    tables: usize,
    chunked: usize,
    bytes_on_disk: u64,
    bytes_logical: u64,
}

impl StorageStats {
    fn ratio(&self) -> f64 {
        if self.bytes_on_disk == 0 {
            1.0
        } else {
            self.bytes_logical as f64 / self.bytes_on_disk as f64
        }
    }
}

/// Parses every table file (headers + bodies, never materialized) to sum
/// compressed and logical sizes. Runs with metrics suppressed so a
/// `stats --json` dump reflects the store load alone, not this sweep.
fn storage_stats(dir: &Path) -> Result<StorageStats, String> {
    let metrics_were_on = s2rdf_columnar::metrics::enabled();
    s2rdf_columnar::metrics::set_enabled(false);
    let sweep = (|| {
        let tables =
            s2rdf_columnar::TableStore::open(dir.join("tables")).map_err(|e| e.to_string())?;
        let mut out = StorageStats {
            tables: 0,
            chunked: 0,
            bytes_on_disk: tables.total_size().map_err(|e| e.to_string())?,
            bytes_logical: 0,
        };
        for name in tables.names() {
            let ct = tables.load_compressed(&name).map_err(|e| e.to_string())?;
            out.tables += 1;
            out.chunked += ct.is_chunked() as usize;
            out.bytes_logical += ct.logical_bytes() as u64;
        }
        Ok(out)
    })();
    s2rdf_columnar::metrics::set_enabled(metrics_were_on);
    sweep
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let store_dir = args.value("store")?;
    // With --json, operator metrics are recorded while loading the store so
    // the dump includes the I/O counters (tables read, bytes, checksum
    // verifies) of the load itself.
    if args.flag("json") {
        s2rdf_columnar::metrics::set_enabled(true);
        s2rdf_columnar::metrics::reset();
    }
    let store = S2rdfStore::load(Path::new(&store_dir)).map_err(|e| e.to_string())?;
    let catalog = store.catalog();
    // Body-cache effectiveness of the load itself, captured before the
    // storage sweep so the ratio is not skewed by our own re-reads.
    let cache_hits = s2rdf_columnar::metrics::counter("columnar.io.cache_hits").get();
    let cache_misses = s2rdf_columnar::metrics::counter("columnar.io.cache_misses").get();
    let hit_ratio = if cache_hits + cache_misses == 0 {
        0.0
    } else {
        cache_hits as f64 / (cache_hits + cache_misses) as f64
    };
    let storage = storage_stats(Path::new(&store_dir))?;
    if args.flag("json") {
        let summary = catalog.extvp_summary();
        println!("{{");
        println!(
            "  \"store\": \"{}\",",
            s2rdf_columnar::metrics::json_escape(&store_dir)
        );
        println!("  \"triples\": {},", catalog.total_triples);
        println!("  \"predicates\": {},", catalog.num_predicates());
        println!("  \"extvp_built\": {},", catalog.extvp_built);
        println!("  \"extvp_mode\": \"{:?}\",", store.mode());
        println!("  \"oo_built\": {},", catalog.oo_built);
        println!("  \"threshold\": {},", catalog.threshold);
        println!("  \"extvp_partitions\": {},", store.num_extvp_tables());
        println!("  \"extvp_tuples\": {},", store.extvp_tuples());
        println!("  \"sf_one_tables\": {},", summary.sf_one_tables);
        println!(
            "  \"over_threshold_tables\": {},",
            summary.over_threshold_tables
        );
        println!(
            "  \"storage\": {{\"tables\": {}, \"chunked_tables\": {}, \
             \"bytes_on_disk\": {}, \"bytes_logical\": {}, \"compression_ratio\": {:.3}}},",
            storage.tables,
            storage.chunked,
            storage.bytes_on_disk,
            storage.bytes_logical,
            storage.ratio()
        );
        println!(
            "  \"cache\": {{\"hits\": {cache_hits}, \"misses\": {cache_misses}, \
             \"hit_ratio\": {hit_ratio:.3}}},"
        );
        println!(
            "  \"metrics\": {}",
            s2rdf_columnar::metrics::snapshot().to_json()
        );
        println!("}}");
        return Ok(());
    }
    println!("store: {store_dir}");
    println!("  triples (|G|):        {}", catalog.total_triples);
    println!("  predicates:           {}", catalog.num_predicates());
    println!("  ExtVP built:          {}", catalog.extvp_built);
    println!("  ExtVP mode:           {:?}", store.mode());
    println!("  OO correlations:      {}", catalog.oo_built);
    println!("  SF threshold:         {}", catalog.threshold);
    println!("  ExtVP partitions:     {}", store.num_extvp_tables());
    println!("  ExtVP tuples:         {}", store.extvp_tuples());
    let summary = catalog.extvp_summary();
    println!("  SF=1 (not stored):    {}", summary.sf_one_tables);
    println!("  over threshold:       {}", summary.over_threshold_tables);
    println!(
        "  on-disk bytes:        {} ({} tables, {} chunked v3)",
        storage.bytes_on_disk, storage.tables, storage.chunked
    );
    println!(
        "  logical bytes:        {} ({:.2}x compression)",
        storage.bytes_logical,
        storage.ratio()
    );
    println!("\nlargest VP tables:");
    let mut sizes: Vec<_> = catalog.vp_sizes().collect();
    sizes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (p, n) in sizes.into_iter().take(10) {
        let share = n as f64 / catalog.total_triples as f64;
        println!(
            "  {:>9} ({:>5.1}%)  {}",
            n,
            100.0 * share,
            store.dict().term(p)
        );
    }
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let store_dir = args.value("store")?;
    let sparql = read_query_text(args)?;
    let max_print: usize = args.opt_value("max-print").map_or(Ok(20), |s| {
        s.parse().map_err(|_| "bad --max-print".to_string())
    })?;

    let profile = args.flag("profile");
    if profile {
        // Operator-level counters for the profile report.
        s2rdf_columnar::metrics::set_enabled(true);
        s2rdf_columnar::metrics::reset();
    }
    let store = S2rdfStore::load(Path::new(&store_dir)).map_err(|e| e.to_string())?;
    let engine = store.engine(!args.flag("no-extvp"));
    let mut join = s2rdf_columnar::exec::JoinConfig::default();
    if let Some(s) = args.opt_value("broadcast-threshold") {
        join.broadcast_rows = s.parse().map_err(|_| "bad --broadcast-threshold")?;
    }
    if let Some(s) = args.opt_value("target-partition-rows") {
        join.target_partition_rows = s.parse().map_err(|_| "bad --target-partition-rows")?;
    }
    if let Some(s) = args.opt_value("max-partitions") {
        join.max_partitions = s.parse().map_err(|_| "bad --max-partitions")?;
    }
    if let Some(s) = args.opt_value("morsel-rows") {
        join.morsel_rows = s.parse().map_err(|_| "bad --morsel-rows")?;
        if join.morsel_rows == 0 {
            return Err("bad --morsel-rows (must be ≥ 1)".to_string());
        }
    }
    let mut options = QueryOptions {
        intersect_correlations: args.flag("intersect"),
        profile,
        join,
        ..Default::default()
    };
    if let Some(s) = args.opt_value("dp-max-patterns") {
        options.dp_max_patterns = s.parse().map_err(|_| "bad --dp-max-patterns")?;
    }
    if let Some(s) = args.opt_value("replan-threshold") {
        options.replan_threshold = s.parse().map_err(|_| "bad --replan-threshold")?;
    }
    let start = Instant::now();
    let (result, explain) = engine
        .query_result_opt(&sparql, &options)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();

    if profile {
        if let Some(trace) = &explain.trace {
            println!("-- operator span tree:");
            print!("{}", trace.render());
        }
        let snap = s2rdf_columnar::metrics::snapshot();
        println!("-- operator metrics:");
        println!("{}", snap.to_json());
        if let Some(pool) = &explain.pool {
            let busy: u64 = pool.busy_micros.iter().sum();
            println!(
                "-- worker pool: {} workers, {} tasks ({} stolen), \
                 max queue depth {}, {} µs busy total",
                pool.workers, pool.tasks, pool.steals, pool.max_queue_depth, busy
            );
        }
    }
    if args.flag("explain") || profile {
        if explain.statically_empty {
            println!("-- proven empty from ExtVP statistics; nothing executed");
        }
        for step in &explain.path_steps {
            let deltas: Vec<String> = step.iteration_rows.iter().map(|n| n.to_string()).collect();
            println!(
                "-- path {} [{}]: {} iteration(s) ({}) → {} rows",
                step.path,
                step.mode,
                step.iteration_rows.len(),
                deltas.join(", "),
                step.total_rows
            );
        }
        for step in &explain.bgp_steps {
            if step.rationale.is_empty() {
                println!(
                    "-- scan {} → {} rows (SF {:.2})",
                    step.table, step.rows, step.sf
                );
            } else {
                println!(
                    "-- scan {} → {} rows (SF {:.2}, {} µs) [{}]",
                    step.table, step.rows, step.sf, step.wall_micros, step.rationale
                );
            }
        }
        if !explain.join_order_method.is_empty() {
            println!("-- join order: {}", explain.join_order_method);
        }
        for join in &explain.join_steps {
            let est = join.est_out_rows.map_or(String::new(), |e| {
                format!(", est {e} vs observed {} rows", join.decision.out_rows)
            });
            println!(
                "-- join [{}] {}{} ({} µs){}",
                join.context,
                join.decision.summary(),
                est,
                join.wall_micros,
                if join.reused_index {
                    " (index reused)"
                } else {
                    ""
                }
            );
        }
        for replan in &explain.replans {
            println!(
                "-- replan after step {}: est {:.0} vs observed {} rows → {}tail [{}]",
                replan.after_step,
                replan.estimated_rows,
                replan.observed_rows,
                if replan.changed {
                    "re-ordered "
                } else {
                    "unchanged "
                },
                replan.new_order.join(", ")
            );
        }
        println!(
            "-- naive join comparisons: {}",
            explain.naive_join_comparisons
        );
        for step in &explain.degraded_steps {
            println!(
                "-- DEGRADED: {} unavailable after {} attempt(s) ({}); used {}",
                step.planned, step.attempts, step.reason, step.fallback
            );
        }
        for err in &explain.recovered_errors {
            println!("-- recovered: {err}");
        }
        if !explain.fully_healthy() {
            println!("-- results are exact; degraded steps only affect cost");
        }
    }
    match &result {
        QueryResult::Solutions(solutions) => {
            println!(
                "{} solutions in {elapsed:.2?} [{}]",
                solutions.len(),
                engine.name()
            );
            if !solutions.is_empty() {
                println!("{}", solutions.vars.join("\t"));
                for (i, row) in solutions.iter().enumerate() {
                    if i >= max_print {
                        println!("… ({} more rows)", solutions.len() - max_print);
                        break;
                    }
                    let cells: Vec<String> = row
                        .iter()
                        .map(|(_, t)| t.map_or("∅".to_string(), |t| t.to_string()))
                        .collect();
                    println!("{}", cells.join("\t"));
                }
            }
        }
        QueryResult::Bool(b) => {
            println!("{b} in {elapsed:.2?} [{}]", engine.name());
        }
        QueryResult::Graph(triples) => {
            println!(
                "{} triples in {elapsed:.2?} [{}]",
                triples.len(),
                engine.name()
            );
            for (i, triple) in triples.iter().enumerate() {
                if i >= max_print {
                    println!("… ({} more triples)", triples.len() - max_print);
                    break;
                }
                println!("{} {} {} .", triple.s, triple.p, triple.o);
            }
        }
    }
    Ok(())
}

/// Reads the triples of an N-Triples file named by `--<flag>`, or an empty
/// batch when the flag is absent.
fn read_delta_file(args: &Args, flag: &str) -> Result<Vec<s2rdf_model::Triple>, String> {
    match args.opt_value(flag) {
        None => Ok(Vec::new()),
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let graph =
                ntriples::read_graph(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
            Ok(graph.iter_decoded().collect())
        }
    }
}

fn cmd_update(args: &Args) -> Result<(), String> {
    let store_dir = args.value("store")?;
    let inserts = read_delta_file(args, "insert")?;
    let deletes = read_delta_file(args, "delete")?;
    if inserts.is_empty() && deletes.is_empty() {
        return Err("need --insert and/or --delete".to_string());
    }
    let mut store = S2rdfStore::load(Path::new(&store_dir)).map_err(|e| e.to_string())?;
    if let Some(opts) = write_options_from(args)? {
        store.set_write_options(opts);
    }
    if store.wal_replayed() > 0 {
        eprintln!(
            "recovered {} WAL record(s) from an earlier interrupted session",
            store.wal_replayed()
        );
    }
    let start = Instant::now();
    let summary = store
        .update_batch(&inserts, &deletes)
        .map_err(|e| e.to_string())?;
    println!(
        "applied in {:.2?}: +{} -{} triples ({} ExtVP partitions recomputed), {} total",
        start.elapsed(),
        summary.inserted,
        summary.deleted,
        summary.extvp_recomputed,
        store.catalog().total_triples
    );
    if args.flag("checkpoint") {
        let report = store.checkpoint().map_err(|e| e.to_string())?;
        println!(
            "checkpointed: {} tables flushed, {} removed, {} WAL record(s) truncated",
            report.tables_flushed, report.tables_removed, report.wal_records_truncated
        );
    } else {
        println!(
            "{} WAL record(s) pending (run `s2rdf checkpoint` to flush)",
            store.wal_pending()
        );
    }
    Ok(())
}

fn cmd_checkpoint(args: &Args) -> Result<(), String> {
    let store_dir = args.value("store")?;
    let mut store = S2rdfStore::load(Path::new(&store_dir)).map_err(|e| e.to_string())?;
    if let Some(opts) = write_options_from(args)? {
        store.set_write_options(opts);
    }
    if store.wal_replayed() > 0 {
        eprintln!(
            "recovered {} WAL record(s) from an earlier interrupted session",
            store.wal_replayed()
        );
    }
    let start = Instant::now();
    let report = store.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "checkpointed in {:.2?}: {} tables flushed, {} removed, {} legacy table(s) \
         rewritten as v3, {} orphan(s) swept, {} dictionary term(s) appended, \
         {} WAL record(s) truncated",
        start.elapsed(),
        report.tables_flushed,
        report.tables_removed,
        report.tables_upgraded,
        report.orphans_removed,
        report.dict_terms_appended,
        report.wal_records_truncated
    );
    Ok(())
}

/// `[{"table": …, "bad_chunks": […], "total_chunks": N}, …]` for the
/// chunk-granular corruption localization of the v3 format.
fn chunks_json(chunks: &[(String, Vec<String>, usize)]) -> String {
    let entries: Vec<String> = chunks
        .iter()
        .map(|(name, bad, total)| {
            let bad: Vec<String> = bad
                .iter()
                .map(|c| format!("\"{}\"", s2rdf_columnar::metrics::json_escape(c)))
                .collect();
            format!(
                "{{\"table\": \"{}\", \"bad_chunks\": [{}], \"total_chunks\": {total}}}",
                s2rdf_columnar::metrics::json_escape(name),
                bad.join(", ")
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn print_chunk_detail(chunks: &[(String, Vec<String>, usize)]) {
    for (name, bad, total) in chunks {
        println!(
            "  {name}: {}/{total} chunk(s) damaged ({})",
            bad.len(),
            bad.join("; ")
        );
    }
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let store_dir = args.value("store")?;
    let dir = Path::new(&store_dir);
    // WAL state is part of the durability picture either way: pending
    // records are uncheckpointed-but-durable updates, torn bytes are the
    // residue of an append interrupted mid-write (truncated at next open).
    let wal = S2rdfStore::wal_status(dir).map_err(|e| e.to_string())?;
    if args.flag("json") {
        let (repaired, unrecoverable, clean, chunk_detail) = if args.flag("repair") {
            let report = S2rdfStore::verify_and_repair(dir).map_err(|e| e.to_string())?;
            (
                report.repaired.len(),
                report.unrecoverable.len(),
                report.clean_after,
                chunks_json(&report.corrupt_chunks),
            )
        } else {
            let tables =
                s2rdf_columnar::TableStore::open(dir.join("tables")).map_err(|e| e.to_string())?;
            let report = tables.verify_all();
            (
                0,
                report.corrupt.len() + report.missing.len(),
                report.is_clean(),
                chunks_json(&report.corrupt_chunks),
            )
        };
        let (wal_records, wal_torn) = wal.map_or((0, 0), |w| (w.records, w.torn_bytes));
        println!(
            "{{\"store\": \"{}\", \"clean\": {clean}, \"repaired\": {repaired}, \
             \"unrecoverable\": {unrecoverable}, \"corrupt_chunks\": {chunk_detail}, \
             \"wal_pending_records\": {wal_records}, \"wal_torn_bytes\": {wal_torn}}}",
            s2rdf_columnar::metrics::json_escape(&store_dir)
        );
        return if clean {
            Ok(())
        } else {
            Err("integrity scan found damage".to_string())
        };
    }
    match wal {
        Some(w) if w.records > 0 || w.torn_bytes > 0 => println!(
            "WAL: {} pending record(s), {} torn byte(s){}",
            w.records,
            w.torn_bytes,
            if w.torn_bytes > 0 {
                " (interrupted append; truncated at next open)"
            } else {
                ""
            }
        ),
        _ => {}
    }
    if args.flag("repair") {
        let report = S2rdfStore::verify_and_repair(dir).map_err(|e| e.to_string())?;
        println!("scanned {} tables", report.scanned);
        print_chunk_detail(&report.corrupt_chunks);
        for name in &report.repaired {
            println!("  rebuilt {name} from its VP base tables");
        }
        for orphan in &report.removed_orphans {
            println!("  removed orphaned file {orphan}");
        }
        for (name, why) in &report.unrecoverable {
            println!("  UNRECOVERABLE {name}: {why}");
        }
        if report.clean_after {
            println!("store is clean");
            Ok(())
        } else {
            Err("store is still damaged after repair".to_string())
        }
    } else {
        let tables =
            s2rdf_columnar::TableStore::open(dir.join("tables")).map_err(|e| e.to_string())?;
        let report = tables.verify_all();
        println!(
            "scanned {} tables: {} ok, {} corrupt, {} missing, {} orphaned files",
            report.ok.len() + report.corrupt.len() + report.missing.len(),
            report.ok.len(),
            report.corrupt.len(),
            report.missing.len(),
            report.orphans.len()
        );
        for (name, why) in &report.corrupt {
            println!("  CORRUPT {name}: {why}");
        }
        print_chunk_detail(&report.corrupt_chunks);
        for name in &report.missing {
            println!("  MISSING {name}");
        }
        for orphan in &report.orphans {
            println!("  orphan  {orphan}");
        }
        if report.is_clean() {
            println!("store is clean");
            Ok(())
        } else {
            Err("integrity scan found damage (run with --repair to rebuild)".to_string())
        }
    }
}

fn read_query_text(args: &Args) -> Result<String, String> {
    if let Some(q) = args.opt_value("query") {
        return Ok(q.to_string());
    }
    if let Some(path) = args.opt_value("file") {
        return std::fs::read_to_string(path).map_err(|e| e.to_string());
    }
    if args.flag("stdin") {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        return Ok(buf);
    }
    Err("need --query, --file or --stdin".to_string())
}
