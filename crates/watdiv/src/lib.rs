//! WatDiv-style benchmark data and query workloads.
//!
//! The paper evaluates S2RDF with the Waterloo SPARQL Diversity Test Suite
//! (WatDiv): a synthetic e-commerce/social dataset plus query workloads
//! covering all BGP shapes. This crate reproduces both sides at laptop
//! scale:
//!
//! * [`generator`] — a deterministic generator for the WatDiv schema
//!   (users, products, retailers, offers, reviews, purchases, websites,
//!   geography) tuned to reproduce the predicate proportions and ExtVP
//!   selectivities the paper annotates (`|VP_friendOf| ≈ 0.4·|G|`,
//!   `SF(ExtVP_OS_friendOf|jobTitle) ≈ 0.05`, `ExtVP_OS_friendOf|language
//!   = 0`, …),
//! * [`workloads`] — the **Basic Testing** use case (L1–L5, S1–S7, F1–F5,
//!   C1–C3, Appendix A), the **Selectivity Testing** workload (ST,
//!   Appendix B) and the **Incremental Linear Testing** workload (IL,
//!   Appendix C), with `%vN%` placeholder instantiation following the
//!   `#mapping` directives.

pub mod generator;
pub mod vocab;
pub mod workloads;

pub use generator::{generate, Config, Counts, Dataset, EntityType};
pub use workloads::{QueryCategory, QueryTemplate, Workload};
