//! The WatDiv vocabulary: namespaces, predicates and entity IRIs.

use s2rdf_model::Term;

/// `wsdbm:` namespace.
pub const WSDBM: &str = "http://db.uwaterloo.ca/~galuc/wsdbm/";
/// `sorg:` (schema.org) namespace.
pub const SORG: &str = "http://schema.org/";
/// `foaf:` namespace.
pub const FOAF: &str = "http://xmlns.com/foaf/";
/// `gr:` (GoodRelations) namespace.
pub const GR: &str = "http://purl.org/goodrelations/";
/// `gn:` (GeoNames) namespace.
pub const GN: &str = "http://www.geonames.org/ontology#";
/// `og:` (Open Graph) namespace.
pub const OG: &str = "http://ogp.me/ns#";
/// `mo:` (Music Ontology) namespace.
pub const MO: &str = "http://purl.org/ontology/mo/";
/// `rev:` (RDF Review) namespace.
pub const REV: &str = "http://purl.org/stuff/rev#";
/// `dc:` (Dublin Core) namespace.
pub const DC: &str = "http://purl.org/dc/terms/";
/// `rdf:` namespace.
pub const RDF: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";

/// The PREFIX header every instantiated query carries.
pub const PREFIX_HEADER: &str = "\
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX sorg: <http://schema.org/>
PREFIX foaf: <http://xmlns.com/foaf/>
PREFIX gr: <http://purl.org/goodrelations/>
PREFIX gn: <http://www.geonames.org/ontology#>
PREFIX og: <http://ogp.me/ns#>
PREFIX mo: <http://purl.org/ontology/mo/>
PREFIX rev: <http://purl.org/stuff/rev#>
PREFIX dc: <http://purl.org/dc/terms/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
";

/// Builds a `wsdbm:` entity IRI like `wsdbm:User42`.
pub fn entity(kind: &str, index: usize) -> Term {
    Term::iri(format!("{WSDBM}{kind}{index}"))
}

/// Builds a predicate IRI from a namespace and local name.
pub fn pred(ns: &str, local: &str) -> Term {
    Term::iri(format!("{ns}{local}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_naming_matches_queries() {
        // The fixed constants referenced by the Basic Testing templates.
        assert_eq!(
            entity("Product", 0),
            Term::iri("http://db.uwaterloo.ca/~galuc/wsdbm/Product0")
        );
        assert_eq!(
            entity("Country", 5),
            Term::iri("http://db.uwaterloo.ca/~galuc/wsdbm/Country5")
        );
    }

    #[test]
    fn prefix_header_parses() {
        let q = format!("{PREFIX_HEADER}SELECT * WHERE {{ ?s wsdbm:likes ?o }}");
        assert!(s2rdf_sparql::parse_query(&q).is_ok());
    }
}
