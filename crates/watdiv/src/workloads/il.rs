//! The Incremental Linear Testing workload (paper Appendix C): linear
//! queries of growing diameter (5–10 triple patterns), bound by a user
//! (IL-1), a retailer (IL-2), or unbound (IL-3). The paper contributed
//! this use case to the official WatDiv suite.

use crate::generator::EntityType;

use super::{QueryCategory, QueryTemplate};

/// All 18 IL templates: IL-{1,2,3}-{5..10}.
pub fn templates() -> Vec<QueryTemplate> {
    fn q(
        name: &'static str,
        mappings: &'static [(&'static str, EntityType)],
        body: &'static str,
    ) -> QueryTemplate {
        QueryTemplate {
            name,
            category: QueryCategory::IncrementalLinear,
            body,
            mappings,
        }
    }
    const USER: &[(&str, EntityType)] = &[("v0", EntityType::User)];
    const RETAILER: &[(&str, EntityType)] = &[("v0", EntityType::Retailer)];
    vec![
        // C.1 Incremental user queries (type 1).
        q(
            "IL-1-5",
            USER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 WHERE {
            %v0% wsdbm:follows ?v1 .
            ?v1 wsdbm:likes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
        }",
        ),
        q(
            "IL-1-6",
            USER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 WHERE {
            %v0% wsdbm:follows ?v1 .
            ?v1 wsdbm:likes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:makesPurchase ?v6 .
        }",
        ),
        q(
            "IL-1-7",
            USER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 WHERE {
            %v0% wsdbm:follows ?v1 .
            ?v1 wsdbm:likes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:makesPurchase ?v6 .
            ?v6 wsdbm:purchaseFor ?v7 .
        }",
        ),
        q(
            "IL-1-8",
            USER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 WHERE {
            %v0% wsdbm:follows ?v1 .
            ?v1 wsdbm:likes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:makesPurchase ?v6 .
            ?v6 wsdbm:purchaseFor ?v7 .
            ?v7 sorg:author ?v8 .
        }",
        ),
        q(
            "IL-1-9",
            USER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 WHERE {
            %v0% wsdbm:follows ?v1 .
            ?v1 wsdbm:likes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:makesPurchase ?v6 .
            ?v6 wsdbm:purchaseFor ?v7 .
            ?v7 sorg:author ?v8 .
            ?v8 dc:Location ?v9 .
        }",
        ),
        q(
            "IL-1-10",
            USER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 ?v10 WHERE {
            %v0% wsdbm:follows ?v1 .
            ?v1 wsdbm:likes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:makesPurchase ?v6 .
            ?v6 wsdbm:purchaseFor ?v7 .
            ?v7 sorg:author ?v8 .
            ?v8 dc:Location ?v9 .
            ?v9 gn:parentCountry ?v10 .
        }",
        ),
        // C.2 Incremental retailer queries (type 2).
        q(
            "IL-2-5",
            RETAILER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 WHERE {
            %v0% gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 sorg:director ?v3 .
            ?v3 wsdbm:friendOf ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
        }",
        ),
        q(
            "IL-2-6",
            RETAILER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 WHERE {
            %v0% gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 sorg:director ?v3 .
            ?v3 wsdbm:friendOf ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
        }",
        ),
        q(
            "IL-2-7",
            RETAILER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 WHERE {
            %v0% gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 sorg:director ?v3 .
            ?v3 wsdbm:friendOf ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:editor ?v7 .
        }",
        ),
        q(
            "IL-2-8",
            RETAILER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 WHERE {
            %v0% gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 sorg:director ?v3 .
            ?v3 wsdbm:friendOf ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:editor ?v7 .
            ?v7 wsdbm:makesPurchase ?v8 .
        }",
        ),
        q(
            "IL-2-9",
            RETAILER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 WHERE {
            %v0% gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 sorg:director ?v3 .
            ?v3 wsdbm:friendOf ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:editor ?v7 .
            ?v7 wsdbm:makesPurchase ?v8 .
            ?v8 wsdbm:purchaseFor ?v9 .
        }",
        ),
        q(
            "IL-2-10",
            RETAILER,
            "SELECT ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 ?v10 WHERE {
            %v0% gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 sorg:director ?v3 .
            ?v3 wsdbm:friendOf ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:editor ?v7 .
            ?v7 wsdbm:makesPurchase ?v8 .
            ?v8 wsdbm:purchaseFor ?v9 .
            ?v9 sorg:caption ?v10 .
        }",
        ),
        // C.3 Incremental unbound queries (type 3).
        q(
            "IL-3-5",
            &[],
            "SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 WHERE {
            ?v0 gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
        }",
        ),
        q(
            "IL-3-6",
            &[],
            "SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 WHERE {
            ?v0 gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
        }",
        ),
        q(
            "IL-3-7",
            &[],
            "SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 WHERE {
            ?v0 gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:author ?v7 .
        }",
        ),
        q(
            "IL-3-8",
            &[],
            "SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 WHERE {
            ?v0 gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:author ?v7 .
            ?v7 wsdbm:follows ?v8 .
        }",
        ),
        q(
            "IL-3-9",
            &[],
            "SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 WHERE {
            ?v0 gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:author ?v7 .
            ?v7 wsdbm:follows ?v8 .
            ?v8 foaf:homepage ?v9 .
        }",
        ),
        q(
            "IL-3-10",
            &[],
            "SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 ?v10 WHERE {
            ?v0 gr:offers ?v1 .
            ?v1 gr:includes ?v2 .
            ?v2 rev:hasReview ?v3 .
            ?v3 rev:reviewer ?v4 .
            ?v4 wsdbm:friendOf ?v5 .
            ?v5 wsdbm:likes ?v6 .
            ?v6 sorg:author ?v7 .
            ?v7 wsdbm:follows ?v8 .
            ?v8 foaf:homepage ?v9 .
            ?v9 sorg:language ?v10 .
        }",
        ),
    ]
}
