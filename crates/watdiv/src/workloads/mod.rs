//! The paper's three query workloads (Appendices A, B and C).

pub mod basic;
pub mod il;
pub mod st;

use rand::Rng;

use crate::generator::{Dataset, EntityType};
use crate::vocab::PREFIX_HEADER;

/// Query shape/category, following the paper's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryCategory {
    /// Basic Testing: linear (L).
    Linear,
    /// Basic Testing: star (S).
    Star,
    /// Basic Testing: snowflake (F).
    Snowflake,
    /// Basic Testing: complex (C).
    Complex,
    /// Selectivity Testing (ST).
    Selectivity,
    /// Incremental Linear Testing (IL).
    IncrementalLinear,
}

impl QueryCategory {
    /// One-letter label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            QueryCategory::Linear => "L",
            QueryCategory::Star => "S",
            QueryCategory::Snowflake => "F",
            QueryCategory::Complex => "C",
            QueryCategory::Selectivity => "ST",
            QueryCategory::IncrementalLinear => "IL",
        }
    }
}

/// A query template with `%vN%` placeholders and their `#mapping`
/// directives.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    /// Query name as the paper uses it (e.g. `L1`, `ST-3-2`, `IL-1-7`).
    pub name: &'static str,
    /// Shape category.
    pub category: QueryCategory,
    /// The SPARQL body, placeholders included, without prefixes.
    pub body: &'static str,
    /// `#mapping` directives: placeholder variable → entity type drawn
    /// uniformly.
    pub mappings: &'static [(&'static str, EntityType)],
}

impl QueryTemplate {
    /// Instantiates the template against a dataset: every `%vN%`
    /// placeholder is replaced by a uniformly drawn entity of its mapped
    /// type, and the standard prefix header is prepended.
    pub fn instantiate<R: Rng>(&self, data: &Dataset, rng: &mut R) -> String {
        let mut body = self.body.to_string();
        for (var, ty) in self.mappings {
            let term = data.random_entity(*ty, rng);
            body = body.replace(&format!("%{var}%"), &term.to_string());
        }
        debug_assert!(
            !body.contains('%'),
            "unreplaced placeholder in {}",
            self.name
        );
        format!("{PREFIX_HEADER}{body}")
    }
}

/// A named collection of templates.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name ("Basic Testing", …).
    pub name: &'static str,
    /// The templates, in the paper's order.
    pub templates: Vec<QueryTemplate>,
}

impl Workload {
    /// The Basic Testing use case (Appendix A): L1–L5, S1–S7, F1–F5,
    /// C1–C3.
    pub fn basic_testing() -> Workload {
        Workload {
            name: "Basic Testing",
            templates: basic::templates(),
        }
    }

    /// The Selectivity Testing workload (Appendix B): ST-1-1 … ST-8-2.
    pub fn selectivity_testing() -> Workload {
        Workload {
            name: "Selectivity Testing",
            templates: st::templates(),
        }
    }

    /// The Incremental Linear Testing workload (Appendix C): IL-1/2/3 with
    /// diameters 5–10.
    pub fn incremental_linear() -> Workload {
        Workload {
            name: "Incremental Linear Testing",
            templates: il::templates(),
        }
    }

    /// Looks a template up by name.
    pub fn get(&self, name: &str) -> Option<&QueryTemplate> {
        self.templates.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, Config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workload_sizes_match_paper() {
        assert_eq!(Workload::basic_testing().templates.len(), 20);
        assert_eq!(Workload::selectivity_testing().templates.len(), 20);
        assert_eq!(Workload::incremental_linear().templates.len(), 18);
    }

    #[test]
    fn every_template_instantiates_and_parses() {
        let data = generate(&Config::default());
        let mut rng = StdRng::seed_from_u64(99);
        for workload in [
            Workload::basic_testing(),
            Workload::selectivity_testing(),
            Workload::incremental_linear(),
        ] {
            for template in &workload.templates {
                let q = template.instantiate(&data, &mut rng);
                assert!(
                    !q.contains('%'),
                    "{}: unreplaced placeholder",
                    template.name
                );
                s2rdf_sparql::parse_query(&q)
                    .unwrap_or_else(|e| panic!("{} does not parse: {e}\n{q}", template.name));
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        let basic = Workload::basic_testing();
        assert!(basic.get("S3").is_some());
        assert!(basic.get("Z9").is_none());
        assert_eq!(basic.get("C1").unwrap().category, QueryCategory::Complex);
    }

    #[test]
    fn categories_are_consistent() {
        let basic = Workload::basic_testing();
        for t in &basic.templates {
            let expected = match t.name.chars().next().unwrap() {
                'L' => QueryCategory::Linear,
                'S' => QueryCategory::Star,
                'F' => QueryCategory::Snowflake,
                'C' => QueryCategory::Complex,
                other => panic!("unexpected name initial {other}"),
            };
            assert_eq!(t.category, expected, "{}", t.name);
        }
        for t in &Workload::incremental_linear().templates {
            assert_eq!(t.category, QueryCategory::IncrementalLinear);
        }
    }
}
