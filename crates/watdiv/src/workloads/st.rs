//! The Selectivity Testing workload (paper Appendix B), designed to probe
//! ExtVP's behaviour under varying OS/SO/SS selectivities, high-selectivity
//! inputs, OS-vs-SO choices, and statistically-empty queries.
//!
//! Two queries are normalized against apparent typos in the paper's
//! appendix: ST-4-2 writes `wsdbm:reviewer` (a predicate that exists
//! nowhere in WatDiv) for `rev:reviewer`, and ST-4-3 writes
//! `wsdbm:author` for `sorg:author`. We use the real predicates, keeping
//! the annotated selectivities; EXPERIMENTS.md notes the substitution.

use super::{QueryCategory, QueryTemplate};

/// All 20 Selectivity Testing queries (none take mappings).
pub fn templates() -> Vec<QueryTemplate> {
    fn q(name: &'static str, body: &'static str) -> QueryTemplate {
        QueryTemplate {
            name,
            category: QueryCategory::Selectivity,
            body,
            mappings: &[],
        }
    }
    vec![
        // B.1 Varying OS selectivity over a large VP input (friendOf).
        q(
            "ST-1-1",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:friendOf ?v1 . ?v1 sorg:email ?v2 . }",
        ),
        q(
            "ST-1-2",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:friendOf ?v1 . ?v1 foaf:age ?v2 . }",
        ),
        q(
            "ST-1-3",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:friendOf ?v1 . ?v1 sorg:jobTitle ?v2 . }",
        ),
        // B.1 with a small VP input (reviewer).
        q(
            "ST-2-1",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 rev:reviewer ?v1 . ?v1 sorg:email ?v2 . }",
        ),
        q(
            "ST-2-2",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 rev:reviewer ?v1 . ?v1 foaf:age ?v2 . }",
        ),
        q(
            "ST-2-3",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 rev:reviewer ?v1 . ?v1 sorg:jobTitle ?v2 . }",
        ),
        // B.2 Varying SO selectivity.
        q(
            "ST-3-1",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:follows ?v1 . ?v1 wsdbm:friendOf ?v2 . }",
        ),
        q(
            "ST-3-2",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 rev:reviewer ?v1 . ?v1 wsdbm:friendOf ?v2 . }",
        ),
        q(
            "ST-3-3",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 sorg:author ?v1 . ?v1 wsdbm:friendOf ?v2 . }",
        ),
        q(
            "ST-4-1",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:follows ?v1 . ?v1 wsdbm:likes ?v2 . }",
        ),
        q(
            "ST-4-2",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 rev:reviewer ?v1 . ?v1 wsdbm:likes ?v2 . }",
        ),
        q(
            "ST-4-3",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 sorg:author ?v1 . ?v1 wsdbm:likes ?v2 . }",
        ),
        // B.3 Varying SS selectivity.
        q(
            "ST-5-1",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:friendOf ?v1 . ?v0 sorg:email ?v2 . }",
        ),
        q(
            "ST-5-2",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:friendOf ?v1 . ?v0 wsdbm:follows ?v2 . }",
        ),
        // B.4 High-selectivity queries on small inputs.
        q(
            "ST-6-1",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:likes ?v1 . ?v1 sorg:trailer ?v2 . }",
        ),
        q(
            "ST-6-2",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 sorg:email ?v1 . ?v0 sorg:faxNumber ?v2 . }",
        ),
        // B.5 OS vs SO selectivity.
        q(
            "ST-7-1",
            "SELECT ?v0 ?v1 ?v2 ?v3 WHERE {
                ?v0 wsdbm:friendOf ?v1 .
                ?v1 wsdbm:follows ?v2 .
                ?v2 foaf:homepage ?v3 .
            }",
        ),
        q(
            "ST-7-2",
            "SELECT ?v0 ?v1 ?v2 ?v3 WHERE {
                ?v0 mo:artist ?v1 .
                ?v1 wsdbm:friendOf ?v2 .
                ?v2 wsdbm:follows ?v3 .
            }",
        ),
        // B.6 Empty-result queries answered from statistics alone.
        q(
            "ST-8-1",
            "SELECT ?v0 ?v1 ?v2 WHERE { ?v0 wsdbm:friendOf ?v1 . ?v1 sorg:language ?v2 . }",
        ),
        q(
            "ST-8-2",
            "SELECT ?v0 ?v1 ?v2 ?v3 WHERE {
                ?v0 wsdbm:friendOf ?v1 .
                ?v1 wsdbm:follows ?v2 .
                ?v2 sorg:language ?v3 .
            }",
        ),
    ]
}
