//! Deterministic WatDiv-style data generator.
//!
//! Entity counts scale linearly with the scale factor (≈ 100 K triples per
//! unit, mirroring WatDiv's ≈ 109 K per unit in the paper's Table 2);
//! vocabulary entities (countries, topics, genres, …) stay constant like
//! in WatDiv. Pool memberships (who has friends, who follows, who
//! reviews, …) are index-based and coverage probabilities are drawn from a
//! seeded RNG, so a given `(scale, seed)` always produces the same graph.
//!
//! The proportions are tuned to the selectivities the paper reports for
//! its Selectivity Testing workload (Appendix B), e.g. `|VP_friendOf| ≈
//! 0.4·|G|`, `SF(ExtVP_OS_friendOf|email) ≈ 0.9`,
//! `SF(ExtVP_OS_friendOf|jobTitle) ≈ 0.05`, and structural zeros like
//! `ExtVP_OS_friendOf|language = 0` (users never have `sorg:language`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use s2rdf_model::{Graph, Term};

use crate::vocab::{entity, pred, DC, FOAF, GN, GR, MO, OG, RDF, REV, SORG, WSDBM};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Scale factor (≥ 1). One unit ≈ 100 K triples.
    pub scale: u32,
    /// RNG seed; same seed + scale ⇒ identical dataset.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { scale: 1, seed: 42 }
    }
}

/// Entity population sizes of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Scaling entities.
    pub users: usize,
    /// Products.
    pub products: usize,
    /// Offers.
    pub offers: usize,
    /// Reviews.
    pub reviews: usize,
    /// Purchases.
    pub purchases: usize,
    /// Websites.
    pub websites: usize,
    /// Retailers.
    pub retailers: usize,
    /// Cities (constant).
    pub cities: usize,
    /// Countries (constant).
    pub countries: usize,
    /// Topics (constant).
    pub topics: usize,
    /// Sub-genres (constant).
    pub subgenres: usize,
    /// Languages (constant).
    pub languages: usize,
    /// Age groups (constant).
    pub age_groups: usize,
    /// User roles (constant).
    pub roles: usize,
    /// Product categories (constant).
    pub categories: usize,
}

impl Counts {
    fn for_scale(scale: u32) -> Counts {
        let sf = scale as usize;
        Counts {
            users: 1000 * sf,
            products: 250 * sf,
            offers: 900 * sf,
            reviews: 500 * sf,
            purchases: 450 * sf,
            websites: 50 * sf,
            retailers: 5 * sf.max(1),
            cities: 240,
            countries: 25,
            topics: 250,
            subgenres: 145,
            languages: 25,
            age_groups: 9,
            roles: 3,
            categories: 15,
        }
    }
}

/// Entity kinds the query templates draw `#mapping` placeholders from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityType {
    /// `wsdbm:User`
    User,
    /// `wsdbm:Retailer`
    Retailer,
    /// `wsdbm:Website`
    Website,
    /// `wsdbm:City`
    City,
    /// `wsdbm:Country`
    Country,
    /// `wsdbm:Topic`
    Topic,
    /// `wsdbm:ProductCategory`
    ProductCategory,
    /// `wsdbm:AgeGroup`
    AgeGroup,
    /// `wsdbm:SubGenre`
    SubGenre,
}

/// A generated dataset: the graph plus its population sizes.
#[derive(Debug)]
pub struct Dataset {
    /// The RDF graph.
    pub graph: Graph,
    /// Population sizes (for query instantiation).
    pub counts: Counts,
}

impl Dataset {
    /// A uniformly random entity of the given type (for `#mapping v%N%
    /// <type> uniform` instantiation).
    pub fn random_entity<R: Rng>(&self, ty: EntityType, rng: &mut R) -> Term {
        let (kind, n) = match ty {
            EntityType::User => ("User", self.counts.users),
            EntityType::Retailer => ("Retailer", self.counts.retailers),
            EntityType::Website => ("Website", self.counts.websites),
            EntityType::City => ("City", self.counts.cities),
            EntityType::Country => ("Country", self.counts.countries),
            EntityType::Topic => ("Topic", self.counts.topics),
            EntityType::ProductCategory => ("ProductCategory", self.counts.categories),
            EntityType::AgeGroup => ("AgeGroup", self.counts.age_groups),
            EntityType::SubGenre => ("SubGenre", self.counts.subgenres),
        };
        entity(kind, rng.gen_range(0..n))
    }
}

/// Exponentially distributed degree with the given mean, at least 1.
fn degree<R: Rng>(rng: &mut R, mean: f64) -> usize {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean * u.ln()).round().max(1.0) as usize
}

// User pool memberships (index-based, see module docs):
// ~89% of users can be followed. Modulus 9 is coprime to the moduli of the
// other pools, so the exclusion hits friend-havers/likers uniformly and
// SF(ExtVP_SO_friendOf|follows) lands at ≈ 8/9 ≈ 0.9 (ST-3-1).
fn followable(u: usize) -> bool {
    !u.is_multiple_of(9)
}
// 40% of users have friendOf out-edges.
fn has_friends(u: usize) -> bool {
    u % 5 < 2
}
// 77% of users follow others.
fn follower(u: usize) -> bool {
    u % 100 < 77
}
// 25% of users like products.
fn liker(u: usize) -> bool {
    u % 4 == 1
}
// 35% of users write reviews.
fn reviewer(u: usize) -> bool {
    u % 20 < 7
}
// 1% of users are artists (chosen inside the friend-haver pool so that
// ExtVP_SO_friendOf|artist is small but non-zero, ST-7-2). Referenced from
// a debug assertion where the pool is sampled.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
fn artist(u: usize) -> bool {
    u % 100 == 1
}
// 5% of users have a job title; the same users have personal homepages
// (keeps C2's jobTitle ∧ homepage ∧ makesPurchase conjunction satisfiable).
fn professional(u: usize) -> bool {
    u % 20 == 7
}

/// Generates a dataset.
pub fn generate(config: &Config) -> Dataset {
    let counts = Counts::for_scale(config.scale.max(1));
    let mut rng = StdRng::seed_from_u64(config.seed ^ (config.scale as u64) << 32);
    let mut g = Graph::new();

    let user = |i: usize| entity("User", i);
    let product = |i: usize| entity("Product", i);
    let website = |i: usize| entity("Website", i);
    let city = |i: usize| entity("City", i);
    let country = |i: usize| entity("Country", i);
    let topic = |i: usize| entity("Topic", i);
    let subgenre = |i: usize| entity("SubGenre", i);
    let language = |i: usize| entity("Language", i);

    let rdf_type = pred(RDF, "type");

    // ---- Geography ----
    let parent_country = pred(GN, "parentCountry");
    for c in 0..counts.cities {
        g.insert(&t(
            city(c),
            parent_country.clone(),
            country(c % counts.countries),
        ));
    }

    // ---- Sub-genres: tagged and typed (F1 navigates hasGenre → og:tag) --
    let og_tag = pred(OG, "tag");
    for s in 0..counts.subgenres {
        g.insert(&t(subgenre(s), og_tag.clone(), topic(s % counts.topics)));
        g.insert(&t(
            subgenre(s),
            rdf_type.clone(),
            Term::iri(format!("{WSDBM}Genre")),
        ));
    }

    // ---- Websites ----
    for w in 0..counts.websites {
        g.insert(&t(
            website(w),
            pred(SORG, "url"),
            Term::literal(format!("http://www.website{w}.example.org/")),
        ));
        if rng.gen_bool(0.8) {
            g.insert(&t(
                website(w),
                pred(WSDBM, "hits"),
                Term::integer(rng.gen_range(1..1_000_000)),
            ));
        }
        if rng.gen_bool(0.5) {
            g.insert(&t(
                website(w),
                pred(SORG, "language"),
                language(rng.gen_range(0..counts.languages)),
            ));
        }
    }

    // ---- Retailers ----
    for r in 0..counts.retailers {
        g.insert(&t(
            entity("Retailer", r),
            pred(SORG, "legalName"),
            Term::literal(format!("Retailer {r} Inc.")),
        ));
    }

    // ---- Users ----
    let friend_of = pred(WSDBM, "friendOf");
    let follows = pred(WSDBM, "follows");
    let likes = pred(WSDBM, "likes");
    // Mean out-degrees chosen so friendOf ≈ 0.41·|G| and follows ≈ 0.31·|G|.
    let friend_mean = 107.0;
    let follow_mean = 41.5;
    for u in 0..counts.users {
        let me = user(u);
        g.insert(&t(
            me.clone(),
            rdf_type.clone(),
            entity("Role", u % counts.roles),
        ));
        if rng.gen_bool(0.9) {
            g.insert(&t(
                me.clone(),
                pred(SORG, "email"),
                Term::literal(format!("user{u}@example.org")),
            ));
        }
        if rng.gen_bool(0.5) {
            g.insert(&t(
                me.clone(),
                pred(FOAF, "age"),
                entity("AgeGroup", rng.gen_range(0..counts.age_groups)),
            ));
        }
        if professional(u) {
            g.insert(&t(
                me.clone(),
                pred(SORG, "jobTitle"),
                Term::literal(JOB_TITLES[u % JOB_TITLES.len()]),
            ));
            g.insert(&t(
                me.clone(),
                pred(FOAF, "homepage"),
                website(rng.gen_range(0..counts.websites)),
            ));
        }
        if u % 100 == 13 {
            g.insert(&t(
                me.clone(),
                pred(SORG, "faxNumber"),
                Term::literal(format!("+1-555-{u:07}")),
            ));
        }
        if rng.gen_bool(0.4) {
            g.insert(&t(
                me.clone(),
                pred(DC, "Location"),
                city(rng.gen_range(0..counts.cities)),
            ));
        }
        if rng.gen_bool(0.6) {
            g.insert(&t(
                me.clone(),
                pred(SORG, "nationality"),
                country(rng.gen_range(0..counts.countries)),
            ));
        }
        if rng.gen_bool(0.7) {
            g.insert(&t(
                me.clone(),
                pred(WSDBM, "gender"),
                entity("Gender", u % 2),
            ));
        }
        if rng.gen_bool(0.7) {
            g.insert(&t(
                me.clone(),
                pred(FOAF, "givenName"),
                Term::literal(GIVEN_NAMES[u % GIVEN_NAMES.len()]),
            ));
        }
        if rng.gen_bool(0.7) {
            g.insert(&t(
                me.clone(),
                pred(FOAF, "familyName"),
                Term::literal(FAMILY_NAMES[u % FAMILY_NAMES.len()]),
            ));
        }
        for _ in 0..degree(&mut rng, 1.5).min(6) {
            g.insert(&t(
                me.clone(),
                pred(WSDBM, "subscribes"),
                website(rng.gen_range(0..counts.websites)),
            ));
        }
        if has_friends(u) {
            for _ in 0..degree(&mut rng, friend_mean) {
                g.insert(&t(
                    me.clone(),
                    friend_of.clone(),
                    user(rng.gen_range(0..counts.users)),
                ));
            }
        }
        if follower(u) {
            for _ in 0..degree(&mut rng, follow_mean) {
                // Targets restricted to the followable 90% so that
                // SF(ExtVP_SO_friendOf|follows) ≈ 0.9 (ST-3-1).
                let mut target = rng.gen_range(0..counts.users);
                if !followable(target) {
                    target = (target + 1) % counts.users;
                }
                g.insert(&t(me.clone(), follows.clone(), user(target)));
            }
        }
        if liker(u) {
            for _ in 0..degree(&mut rng, 4.4) {
                g.insert(&t(
                    me.clone(),
                    likes.clone(),
                    product(rng.gen_range(0..counts.products)),
                ));
            }
        }
    }

    // ---- Products ----
    for p in 0..counts.products {
        let it = product(p);
        let category = p % counts.categories;
        g.insert(&t(
            it.clone(),
            rdf_type.clone(),
            entity("ProductCategory", category),
        ));
        if rng.gen_bool(0.5) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "caption"),
                Term::literal(format!("Caption of product {p}")),
            ));
        }
        if rng.gen_bool(0.7) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "description"),
                Term::literal(format!("Description of product {p}")),
            ));
        }
        if rng.gen_bool(0.5) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "keywords"),
                Term::literal(format!("keyword{} keyword{}", p % 37, p % 11)),
            ));
        }
        if rng.gen_bool(0.6) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "language"),
                language(rng.gen_range(0..counts.languages)),
            ));
        }
        if rng.gen_bool(0.4) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "contentRating"),
                Term::literal(RATINGS[p % RATINGS.len()]),
            ));
        }
        if rng.gen_bool(0.4) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "contentSize"),
                Term::integer(rng.gen_range(1..10_000)),
            ));
        }
        if rng.gen_bool(0.8) {
            g.insert(&t(
                it.clone(),
                pred(OG, "title"),
                Term::literal(format!("Product {p}")),
            ));
        }
        if rng.gen_bool(0.3) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "text"),
                Term::literal(format!("Text about product {p}")),
            ));
        }
        if rng.gen_bool(0.4) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "publisher"),
                Term::literal(format!("Publisher {}", p % 23)),
            ));
        }
        // One deterministic tag guarantees every topic occurs (query
        // instantiation draws topics uniformly), plus random extras.
        g.insert(&t(it.clone(), og_tag.clone(), topic(p % counts.topics)));
        for _ in 0..degree(&mut rng, 1.0).min(4) {
            g.insert(&t(
                it.clone(),
                og_tag.clone(),
                topic(rng.gen_range(0..counts.topics)),
            ));
        }
        for _ in 0..degree(&mut rng, 1.5).min(5) {
            g.insert(&t(
                it.clone(),
                pred(WSDBM, "hasGenre"),
                subgenre(rng.gen_range(0..counts.subgenres)),
            ));
        }
        // Trailers only on category-2 products (movies): every 7th of
        // them, ≈1% of all products — deterministic so the predicate
        // exists at every scale. Gives SF(ExtVP_OS_likes|trailer) < 0.02
        // (ST-6-1) and makes F1's ProductCategory2 constraint satisfiable.
        if category == 2 && (p / counts.categories).is_multiple_of(7) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "trailer"),
                website(rng.gen_range(0..counts.websites)),
            ));
        }
        if rng.gen_bool(0.35) {
            g.insert(&t(
                it.clone(),
                pred(FOAF, "homepage"),
                website(rng.gen_range(0..counts.websites)),
            ));
        }
        if rng.gen_bool(0.15) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "author"),
                user(rng.gen_range(0..counts.users)),
            ));
        }
        if rng.gen_bool(0.1) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "editor"),
                user(rng.gen_range(0..counts.users)),
            ));
        }
        if rng.gen_bool(0.1) {
            g.insert(&t(
                it.clone(),
                pred(SORG, "director"),
                user(rng.gen_range(0..counts.users)),
            ));
        }
        for _ in 0..degree(&mut rng, 0.5).min(4) {
            if rng.gen_bool(0.5) {
                g.insert(&t(
                    it.clone(),
                    pred(SORG, "actor"),
                    user(rng.gen_range(0..counts.users)),
                ));
            }
        }
        if rng.gen_bool(0.1) {
            // Artists come from the small artist pool.
            let who = rng.gen_range(0..counts.users / 100) * 100 + 1;
            debug_assert!(artist(who));
            g.insert(&t(it.clone(), pred(MO, "artist"), user(who)));
        }
        if rng.gen_bool(0.08) {
            g.insert(&t(
                it.clone(),
                pred(MO, "conductor"),
                user(rng.gen_range(0..counts.users)),
            ));
        }
    }

    // ---- Reviews ----
    let has_review = pred(REV, "hasReview");
    let rev_reviewer = pred(REV, "reviewer");
    for r in 0..counts.reviews {
        let review = entity("Review", r);
        g.insert(&t(
            product(rng.gen_range(0..counts.products)),
            has_review.clone(),
            review.clone(),
        ));
        // Reviewer drawn from the 35% reviewer pool.
        let mut who = rng.gen_range(0..counts.users);
        while !reviewer(who) {
            who = (who + 1) % counts.users;
        }
        g.insert(&t(review.clone(), rev_reviewer.clone(), user(who)));
        if rng.gen_bool(0.9) {
            g.insert(&t(
                review.clone(),
                pred(REV, "title"),
                Term::literal(format!("Review {r}")),
            ));
        }
        if rng.gen_bool(0.5) {
            g.insert(&t(
                review,
                pred(REV, "totalVotes"),
                Term::integer(rng.gen_range(0..500)),
            ));
        }
    }

    // ---- Purchases ----
    for pu in 0..counts.purchases {
        let purchase = entity("Purchase", pu);
        g.insert(&t(
            user(rng.gen_range(0..counts.users)),
            pred(WSDBM, "makesPurchase"),
            purchase.clone(),
        ));
        g.insert(&t(
            purchase.clone(),
            pred(WSDBM, "purchaseFor"),
            product(rng.gen_range(0..counts.products)),
        ));
        if rng.gen_bool(0.9) {
            g.insert(&t(
                purchase,
                pred(WSDBM, "purchaseDate"),
                Term::literal(format!(
                    "2015-{:02}-{:02}",
                    rng.gen_range(1..13),
                    rng.gen_range(1..29)
                )),
            ));
        }
    }

    // ---- Offers ----
    for o in 0..counts.offers {
        let offer = entity("Offer", o);
        g.insert(&t(
            entity("Retailer", rng.gen_range(0..counts.retailers)),
            pred(GR, "offers"),
            offer.clone(),
        ));
        g.insert(&t(
            offer.clone(),
            pred(GR, "includes"),
            product(rng.gen_range(0..counts.products)),
        ));
        if rng.gen_bool(0.9) {
            g.insert(&t(
                offer.clone(),
                pred(GR, "price"),
                Term::typed_literal(
                    format!("{}.{:02}", rng.gen_range(1..500), rng.gen_range(0..100)),
                    "http://www.w3.org/2001/XMLSchema#decimal",
                ),
            ));
        }
        if rng.gen_bool(0.8) {
            g.insert(&t(
                offer.clone(),
                pred(GR, "serialNumber"),
                Term::literal(format!("SN-{o:08}")),
            ));
        }
        if rng.gen_bool(0.6) {
            g.insert(&t(
                offer.clone(),
                pred(GR, "validFrom"),
                Term::literal(format!("2015-{:02}-01", rng.gen_range(1..13))),
            ));
        }
        if rng.gen_bool(0.6) {
            g.insert(&t(
                offer.clone(),
                pred(GR, "validThrough"),
                Term::literal(format!("2016-{:02}-01", rng.gen_range(1..13))),
            ));
        }
        if rng.gen_bool(0.5) {
            g.insert(&t(
                offer.clone(),
                pred(SORG, "eligibleQuantity"),
                Term::integer(rng.gen_range(1..100)),
            ));
        }
        if rng.gen_bool(0.6) {
            g.insert(&t(
                offer.clone(),
                pred(SORG, "eligibleRegion"),
                country(rng.gen_range(0..counts.countries)),
            ));
        }
        if rng.gen_bool(0.4) {
            g.insert(&t(
                offer,
                pred(SORG, "priceValidUntil"),
                Term::literal(format!("2016-{:02}-15", rng.gen_range(1..13))),
            ));
        }
    }

    Dataset { graph: g, counts }
}

fn t(s: Term, p: Term, o: Term) -> s2rdf_model::Triple {
    s2rdf_model::Triple::new(s, p, o)
}

const JOB_TITLES: [&str; 12] = [
    "Engineer",
    "Teacher",
    "Nurse",
    "Chef",
    "Architect",
    "Pilot",
    "Librarian",
    "Designer",
    "Analyst",
    "Farmer",
    "Editor",
    "Translator",
];
const GIVEN_NAMES: [&str; 16] = [
    "Alex", "Blake", "Casey", "Drew", "Emery", "Finley", "Gray", "Harper", "Indigo", "Jules",
    "Kai", "Logan", "Morgan", "Noa", "Oakley", "Parker",
];
const FAMILY_NAMES: [&str; 16] = [
    "Smith", "Jones", "Garcia", "Kim", "Nguyen", "Patel", "Sato", "Muller", "Rossi", "Silva",
    "Ivanov", "Chen", "Dubois", "Haddad", "Okafor", "Novak",
];
const RATINGS: [&str; 5] = ["G", "PG", "PG-13", "R", "NC-17"];

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    fn predicate_fractions(g: &Graph) -> FxHashMap<String, f64> {
        let n = g.len() as f64;
        g.predicate_counts()
            .into_iter()
            .map(|(p, c)| (g.dict().term(p).to_string(), c as f64 / n))
            .collect()
    }

    #[test]
    fn deterministic() {
        let a = generate(&Config { scale: 1, seed: 7 });
        let b = generate(&Config { scale: 1, seed: 7 });
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.graph.triples(), b.graph.triples());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&Config { scale: 1, seed: 7 });
        let b = generate(&Config { scale: 1, seed: 8 });
        assert_ne!(a.graph.triples(), b.graph.triples());
    }

    #[test]
    fn scale_is_roughly_linear() {
        let one = generate(&Config { scale: 1, seed: 1 }).graph.len() as f64;
        let three = generate(&Config { scale: 3, seed: 1 }).graph.len() as f64;
        assert!(one > 60_000.0, "SF1 too small: {one}");
        assert!(one < 160_000.0, "SF1 too big: {one}");
        let ratio = three / one;
        assert!((2.4..3.6).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn predicate_proportions_match_paper() {
        let d = generate(&Config::default());
        let f = predicate_fractions(&d.graph);
        let friend = f["<http://db.uwaterloo.ca/~galuc/wsdbm/friendOf>"];
        let follows = f["<http://db.uwaterloo.ca/~galuc/wsdbm/follows>"];
        let likes = f["<http://db.uwaterloo.ca/~galuc/wsdbm/likes>"];
        // Paper: friendOf ≈ 0.41·|G|, follows ≈ 0.3·|G|, likes ≈ 0.01·|G|,
        // friendOf + follows ≈ 0.7·|G| (§7.3).
        assert!((0.30..0.50).contains(&friend), "friendOf fraction {friend}");
        assert!(
            (0.22..0.40).contains(&follows),
            "follows fraction {follows}"
        );
        assert!((0.005..0.02).contains(&likes), "likes fraction {likes}");
        assert!((0.6..0.8).contains(&(friend + follows)));
    }

    #[test]
    fn fixed_constants_exist() {
        let d = generate(&Config::default());
        let dict = d.graph.dict();
        for name in [
            "Product0",
            "Country1",
            "Country5",
            "Language0",
            "Role2",
            "ProductCategory2",
        ] {
            assert!(
                dict.id(&entity(name.trim_end_matches(char::is_numeric), {
                    name.chars()
                        .skip_while(|c| !c.is_numeric())
                        .collect::<String>()
                        .parse()
                        .unwrap()
                }))
                .is_some(),
                "{name} missing from the dataset"
            );
        }
    }

    #[test]
    fn users_never_have_language() {
        // The structural zero behind ST-8-x: ExtVP_OS_friendOf|language = 0.
        let d = generate(&Config::default());
        let g = &d.graph;
        let lang = g.dict().id(&pred(SORG, "language")).unwrap();
        let prefix = format!("{WSDBM}User");
        for tr in g.triples() {
            if tr.p == lang {
                let s = g.dict().term(tr.s).to_string();
                assert!(!s.contains(&prefix), "user with sorg:language: {s}");
            }
        }
    }

    #[test]
    fn random_entities_are_in_range() {
        let d = generate(&Config::default());
        let mut rng = StdRng::seed_from_u64(1);
        for ty in [
            EntityType::User,
            EntityType::Retailer,
            EntityType::Website,
            EntityType::City,
            EntityType::Country,
            EntityType::Topic,
            EntityType::ProductCategory,
            EntityType::AgeGroup,
            EntityType::SubGenre,
        ] {
            let term = d.random_entity(ty, &mut rng);
            // Every mapped entity occurs in the data (has a dictionary id).
            assert!(
                d.graph.dict().id(&term).is_some(),
                "{term} not present in dataset"
            );
        }
    }
}
