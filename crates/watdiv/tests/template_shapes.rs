//! Structural shape analysis of the Basic Testing templates against the
//! paper's L/S/F/C grouping (Fig. 3 / §7.2).
//!
//! The paper's letters are workload labels; most coincide with the pure
//! structural classification, with documented exceptions: L3/L4 are
//! two-pattern subject-subject joins (structurally stars) and C3 is a
//! six-pattern star the paper files under "complex".

use s2rdf_sparql::shape::{analyze, Shape};
use s2rdf_sparql::GraphPattern;
use s2rdf_watdiv::{QueryCategory, Workload};

fn shape_of(body: &str) -> (Shape, usize) {
    // Replace placeholders with a constant so the template parses.
    let mut text = body.to_string();
    for v in 0..10 {
        text = text.replace(&format!("%v{v}%"), "<urn:x>");
    }
    let query =
        s2rdf_sparql::parse_query(&format!("{}{}", s2rdf_watdiv::vocab::PREFIX_HEADER, text))
            .expect("template parses");
    match query.pattern {
        GraphPattern::Bgp(tps) => {
            let report = analyze(&tps);
            (report.shape, report.diameter)
        }
        other => panic!("expected plain BGP, got {other:?}"),
    }
}

#[test]
fn basic_templates_classify_as_labeled() {
    let basic = Workload::basic_testing();
    for template in &basic.templates {
        let (shape, diameter) = shape_of(template.body);
        let expected: &[Shape] = match template.name {
            // Two-pattern SS joins: the paper files them under L, the
            // structure is a 2-star.
            "L3" | "L4" => &[Shape::Star],
            "L1" | "L2" | "L5" => &[Shape::Linear],
            // All S queries are stars (S1 includes an edge *into* the hub).
            name if name.starts_with('S') => &[Shape::Star],
            // Snowflakes are star-trees.
            name if name.starts_with('F') => &[Shape::Snowflake],
            // C1/C2 are tree-shaped compositions, C3 is a pure star the
            // paper groups as complex for workload reasons.
            "C1" | "C2" => &[Shape::Snowflake, Shape::Complex],
            "C3" => &[Shape::Star],
            other => panic!("unknown template {other}"),
        };
        assert!(
            expected.contains(&shape),
            "{}: classified {shape:?} (diameter {diameter}), expected one of {expected:?}",
            template.name
        );
        match template.category {
            QueryCategory::Star => assert_eq!(diameter, 1, "{}", template.name),
            // L3/L4 collapse to stars (diameter 1); the true linear
            // templates must span at least two hops.
            QueryCategory::Linear if shape == Shape::Linear => {
                assert!(diameter >= 2, "{}", template.name)
            }
            _ => {}
        }
    }
}

#[test]
fn il_templates_are_linear_with_growing_diameter() {
    let il = Workload::incremental_linear();
    for template in &il.templates {
        let (shape, diameter) = shape_of(template.body);
        assert_eq!(shape, Shape::Linear, "{}", template.name);
        // IL-<type>-<len>: the diameter equals the pattern count (the
        // paper's definition of linear-query diameter, §2.1).
        let len: usize = template.name.rsplit('-').next().unwrap().parse().unwrap();
        assert_eq!(diameter, len, "{}", template.name);
    }
}

#[test]
fn paper_claim_only_two_basic_queries_exceed_diameter_3() {
    // §7.3: "there are only two queries with a diameter larger than 3
    // (C1 and C2)".
    let basic = Workload::basic_testing();
    let big: Vec<&str> = basic
        .templates
        .iter()
        .filter(|t| shape_of(t.body).1 > 3)
        .map(|t| t.name)
        .collect();
    assert_eq!(big, vec!["C1", "C2"]);
}

#[test]
fn every_template_renders_and_roundtrips() {
    // parse → Display → parse must be the identity for every workload
    // query (exercises the renderer across the full template corpus).
    for workload in [
        Workload::basic_testing(),
        Workload::selectivity_testing(),
        Workload::incremental_linear(),
    ] {
        for template in &workload.templates {
            let mut text = template.body.to_string();
            for v in 0..10 {
                text = text.replace(&format!("%v{v}%"), "<urn:x>");
            }
            let q = format!("{}{}", s2rdf_watdiv::vocab::PREFIX_HEADER, text);
            let parsed = s2rdf_sparql::parse_query(&q).unwrap();
            let rendered = parsed.to_string();
            let reparsed = s2rdf_sparql::parse_query(&rendered).unwrap_or_else(|e| {
                panic!(
                    "{}: rendered text unparseable: {e}\n{rendered}",
                    template.name
                )
            });
            assert_eq!(reparsed, parsed, "{}", template.name);
        }
    }
}
